// State-machine tests for core::SyncProcess: round lifecycle, timeouts,
// staleness/replay rejection, suspend/resume, and the WayOff branch —
// on a real simulator + network, but with hand-built nodes for precise
// control.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/sync_protocol.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace czsync::core {
namespace {

constexpr double kRho = 1e-6;

struct TestNode {
  TestNode(sim::Simulator& sim, net::Network& net, net::ProcId id,
           const SyncConfig& cfg, Duration initial_bias)
      : hw(sim, clk::make_pinned_drift(kRho, 1.0), Rng(100 + id),
           HwTime(sim.now().raw()) + initial_bias),
        clock(hw),
        sync(sim.trace_port(), net, clock, id, cfg, Rng(200 + id)) {
    net.register_handler(id, [this](const net::Message& m) {
      if (drop_all) return;
      sync.handle_message(m);
    });
  }
  clk::HardwareClock hw;
  clk::LogicalClock clock;
  SyncProcess sync;
  bool drop_all = false;  // simulates a crashed peer
};

class SyncProtocolTest : public ::testing::Test {
 protected:
  /// Builds n nodes with the given initial biases.
  void build(const std::vector<double>& biases, int f,
             Duration way_off = Duration::seconds(1)) {
    const int n = static_cast<int>(biases.size());
    net = std::make_unique<net::Network>(
        sim, net::Topology::full_mesh(n),
        net::make_fixed_delay(Duration::millis(10)), Rng(7));
    cfg.params.sync_int = Duration::seconds(60);
    cfg.params.max_wait = Duration::millis(20);
    cfg.params.way_off = way_off;
    cfg.f = f;
    cfg.convergence = make_convergence("bhhn");
    cfg.random_phase = false;
    for (int p = 0; p < n; ++p) {
      nodes.push_back(std::make_unique<TestNode>(
          sim, *net, p, cfg, Duration::seconds(biases[static_cast<std::size_t>(p)])));
    }
  }

  void start_all() {
    for (auto& n : nodes) n->sync.start();
  }

  sim::Simulator sim;
  SyncConfig cfg;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<TestNode>> nodes;
};

TEST_F(SyncProtocolTest, FirstRoundFiresAtPhaseZero) {
  build({0.0, 0.1, 0.2}, 0);
  start_all();
  // random_phase=false: the first alarm is at local time +0 -> fires at
  // tau = 0 (plus nothing); rounds complete after one RTT.
  sim.run_until(SimTau(1.0));
  for (auto& n : nodes) {
    EXPECT_EQ(n->sync.stats().rounds_started, 1u);
    EXPECT_EQ(n->sync.stats().rounds_completed, 1u);
  }
}

TEST_F(SyncProtocolTest, RoundCompletesEarlyWhenAllReply) {
  build({0.0, 0.0, 0.0}, 0);
  start_all();
  // Fixed delay 5ms each way: all replies by 10ms << MaxWait 20ms.
  sim.run_until(SimTau(0.015));
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 1u);
  EXPECT_EQ(nodes[0]->sync.stats().responses_ok, 2u);
  EXPECT_EQ(nodes[0]->sync.stats().timeouts, 0u);
}

TEST_F(SyncProtocolTest, ConvergesTowardPeers) {
  build({0.0, 0.3, 0.3}, 0);
  start_all();
  sim.run_until(SimTau(1.0));
  // Node 0 (behind by 0.3): estimates ~{0, .3, .3}; m=0, M~.3 -> +0.15.
  EXPECT_NEAR(nodes[0]->clock.adjustment().sec(), 0.15, 0.02);
}

TEST_F(SyncProtocolTest, SilentPeerCountsTimeout) {
  build({0.0, 0.0, 0.0, 0.0}, 1);
  nodes[3]->drop_all = true;
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(nodes[0]->sync.stats().timeouts, 1u);
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 1u);
  // With f = 1 the timeout is trimmed; adjustment stays tiny.
  EXPECT_LT(nodes[0]->clock.adjustment().abs().sec(), 0.001);
}

TEST_F(SyncProtocolTest, TimeoutRoundTakesMaxWait) {
  build({0.0, 0.0}, 0);
  nodes[1]->drop_all = true;
  start_all();
  sim.run_until(SimTau(0.015));
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 0u);  // still waiting
  sim.run_until(SimTau(0.025));                          // MaxWait = 20ms
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 1u);
  EXPECT_EQ(nodes[0]->sync.stats().timeouts, 1u);
}

TEST_F(SyncProtocolTest, LateResponseIsStale) {
  // Peer 1 answers, but the reply lands after MaxWait: the round has
  // closed, and the response must be counted stale, not crash.
  build({0.0, 0.0}, 0);
  // Raise latency beyond MaxWait by using a slow network.
  net = std::make_unique<net::Network>(sim, net::Topology::full_mesh(2),
                                       net::make_fixed_delay(Duration::millis(30)),
                                       Rng(7));
  nodes.clear();
  nodes.push_back(std::make_unique<TestNode>(sim, *net, 0, cfg, Duration::zero()));
  nodes.push_back(std::make_unique<TestNode>(sim, *net, 1, cfg, Duration::zero()));
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_GE(nodes[0]->sync.stats().responses_stale, 1u);
  EXPECT_EQ(nodes[0]->sync.stats().responses_ok, 0u);
}

TEST_F(SyncProtocolTest, ForgedNonceRejected) {
  build({0.0, 0.0, 0.0}, 0);
  start_all();
  // Inject a response with a bogus nonce from node 2 to node 0 while the
  // round is in flight.
  sim.run_until(SimTau(0.002));
  ASSERT_TRUE(nodes[0]->sync.round_active());
  net->send(2, 0, net::PingResp{0xdeadbeef, LogicalTime(999.0)});
  sim.run_until(SimTau(1.0));
  EXPECT_GE(nodes[0]->sync.stats().responses_stale, 1u);
  // The bogus clock value must not have poisoned the adjustment.
  EXPECT_LT(nodes[0]->clock.adjustment().abs().sec(), 0.001);
}

TEST_F(SyncProtocolTest, DuplicateResponseRejected) {
  build({0.0, 0.0}, 0);
  start_all();
  sim.run_until(SimTau(1.0));
  const auto ok = nodes[0]->sync.stats().responses_ok;
  EXPECT_EQ(ok, 1u);  // exactly one per peer per round
}

TEST_F(SyncProtocolTest, PingAnsweredOutsideOwnRound) {
  build({0.0, 5.0}, 0);
  // Only node 0 runs rounds; node 1 still answers pings (§3.3 no-rounds).
  nodes[0]->sync.start();
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(nodes[0]->sync.stats().responses_ok, 1u);
  EXPECT_EQ(nodes[1]->sync.stats().rounds_started, 0u);
}

TEST_F(SyncProtocolTest, PeriodicRounds) {
  build({0.0, 0.0}, 0);
  start_all();
  sim.run_until(SimTau(200.0));
  // Rounds at ~0, ~60, ~120, ~180.
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 4u);
}

TEST_F(SyncProtocolTest, SuspendKillsRoundAndCadence) {
  build({0.0, 0.0}, 0);
  start_all();
  sim.run_until(SimTau(0.002));
  ASSERT_TRUE(nodes[0]->sync.round_active());
  nodes[0]->sync.suspend();
  EXPECT_FALSE(nodes[0]->sync.round_active());
  EXPECT_TRUE(nodes[0]->sync.suspended());
  sim.run_until(SimTau(200.0));
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 0u);
  // In-flight replies that arrive post-suspend count as stale, harmless.
  EXPECT_GE(nodes[0]->sync.stats().responses_stale, 0u);
}

TEST_F(SyncProtocolTest, ResumeRestartsImmediately) {
  build({0.0, 0.0}, 0);
  start_all();
  sim.run_until(SimTau(10.0));
  nodes[0]->sync.suspend();
  sim.run_until(SimTau(30.0));
  nodes[0]->sync.resume();
  sim.run_until(SimTau(31.0));
  // Resume schedules a fresh round at once (not SyncInt later).
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 2u);
}

TEST_F(SyncProtocolTest, WayOffBranchJumpsFarClock) {
  // Node 0 is 100s behind; WayOff = 1s: its first sync must take the
  // escape branch and jump nearly the whole way.
  build({-100.0, 0.0, 0.0, 0.0}, 1);
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(nodes[0]->sync.stats().way_off_rounds, 1u);
  EXPECT_NEAR(nodes[0]->clock.adjustment().sec(), 100.0, 0.5);
  // The correct nodes do NOT follow the bad clock: with f=1 they trim it.
  for (int p = 1; p < 4; ++p)
    EXPECT_LT(nodes[static_cast<std::size_t>(p)]->clock.adjustment().abs().sec(), 0.01);
}

TEST_F(SyncProtocolTest, NormalRoundsDoNotUseWayOff) {
  build({-0.05, 0.0, 0.05}, 0);
  start_all();
  sim.run_until(SimTau(300.0));
  EXPECT_EQ(nodes[1]->sync.stats().way_off_rounds, 0u);
}

TEST_F(SyncProtocolTest, OnSyncCompleteHook) {
  build({0.0, 0.2}, 0);
  int calls = 0;
  Duration last = Duration::zero();
  nodes[0]->sync.on_sync_complete = [&](const ConvergenceResult& r) {
    ++calls;
    last = r.adjustment;
  };
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(calls, 1);
  EXPECT_GT(last.sec(), 0.05);
}

TEST_F(SyncProtocolTest, MaxAbsAdjustmentTracked) {
  build({-10.0, 0.0, 0.0, 0.0}, 1, /*way_off=*/Duration::seconds(1));
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_GT(nodes[0]->sync.stats().max_abs_adjustment.sec(), 5.0);
}

TEST_F(SyncProtocolTest, BestOfKPingsAllCounted) {
  cfg.pings_per_peer = 3;
  build({0.0, 0.0, 0.0}, 0);
  start_all();
  sim.run_until(SimTau(1.0));
  // 2 peers x 3 pings each answered.
  EXPECT_EQ(nodes[0]->sync.stats().responses_ok, 6u);
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 1u);
  EXPECT_EQ(nodes[0]->sync.stats().timeouts, 0u);
}

TEST_F(SyncProtocolTest, BestOfKStillConverges) {
  cfg.pings_per_peer = 4;
  build({0.0, 0.3, 0.3}, 0);
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_NEAR(nodes[0]->clock.adjustment().sec(), 0.15, 0.02);
}

TEST(BestOfKScenario, ReducesDeviationUnderJitter) {
  namespace analysis = czsync::analysis;
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-5;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.delay = analysis::Scenario::DelayKind::Jitter;
  s.horizon = Duration::hours(4);
  s.warmup = Duration::minutes(30);
  s.seed = 77;
  const auto k1 = analysis::run_scenario(s);
  s.pings_per_peer = 5;
  const auto k5 = analysis::run_scenario(s);
  // Short round trips dominate under the exponential-tail model; the
  // best-of-5 estimates are tighter, and so is the deviation.
  EXPECT_LT(k5.max_stable_deviation, k1.max_stable_deviation);
  // The cost side: ~5x the message load.
  EXPECT_GT(k5.messages_sent, k1.messages_sent * 4);
}

TEST_F(SyncProtocolTest, TwoNodesMutualConvergence) {
  build({-0.2, 0.2}, 0);
  start_all();
  sim.run_until(SimTau(600.0));
  const double dev = std::abs(nodes[0]->clock.read().raw() -
                              nodes[1]->clock.read().raw());
  EXPECT_LT(dev, 0.03);
}

TEST_F(SyncProtocolTest, WayOffBoundaryJustInsideStaysNormal) {
  // Node 0 is 0.9s ahead with WayOff = 1s: after the f-trim both order
  // statistics sit at ~-0.9 >= -WayOff, so Figure 1 stays on the normal
  // branch and moves only halfway (min(m,0)+max(M,0))/2 ~ -0.45.
  build({0.9, 0.0, 0.0, 0.0}, 1);
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 1u);
  EXPECT_EQ(nodes[0]->sync.stats().way_off_rounds, 0u);
  EXPECT_NEAR(nodes[0]->clock.adjustment().sec(), -0.45, 0.05);
}

TEST_F(SyncProtocolTest, WayOffBoundaryJustOutsideTakesEscapeBranch) {
  // Same setup pushed past the boundary: m ~ -1.1 < -WayOff flips the
  // escape branch, which jumps the whole (m+M)/2 ~ -1.1 at once. The
  // correct nodes trim the outlier and stay put either way.
  build({1.1, 0.0, 0.0, 0.0}, 1);
  start_all();
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(nodes[0]->sync.stats().way_off_rounds, 1u);
  EXPECT_NEAR(nodes[0]->clock.adjustment().sec(), -1.1, 0.05);
  for (int p = 1; p < 4; ++p) {
    EXPECT_LT(nodes[static_cast<std::size_t>(p)]->clock.adjustment().abs().sec(),
              0.01);
    EXPECT_EQ(nodes[static_cast<std::size_t>(p)]->sync.stats().way_off_rounds,
              0u);
  }
}

TEST_F(SyncProtocolTest, SimultaneousRecoveryRoundsAnswerEachOther) {
  // Two processors recover at the same instant: both resume() calls
  // land at the same simulator time, both fire their fresh Sync round
  // immediately, and the interleaved rounds must serve each other's
  // pings — neither sees a timeout, both complete, and their recovery
  // adjustments stay bounded by the honest spread.
  build({0.0, 0.0, 0.0, 0.0}, 1);
  start_all();
  sim.run_until(SimTau(10.0));
  nodes[0]->sync.suspend();
  nodes[1]->sync.suspend();
  sim.run_until(SimTau(30.0));
  const std::uint64_t done0 = nodes[0]->sync.stats().rounds_completed;
  const std::uint64_t done1 = nodes[1]->sync.stats().rounds_completed;
  nodes[0]->sync.resume();
  nodes[1]->sync.resume();
  sim.run_until(SimTau(31.0));
  for (int p : {0, 1}) {
    auto& node = *nodes[static_cast<std::size_t>(p)];
    EXPECT_FALSE(node.sync.suspended());
    EXPECT_FALSE(node.sync.round_active());
    EXPECT_EQ(node.sync.stats().rounds_completed,
              (p == 0 ? done0 : done1) + 1);
    EXPECT_EQ(node.sync.stats().timeouts, 0u);
    EXPECT_LT(node.clock.adjustment().abs().sec(), 0.02);
  }
}

}  // namespace
}  // namespace czsync::core
