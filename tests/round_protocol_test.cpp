// Tests for the round-based comparator (§3.3 ablation): round tagging,
// mismatch discards, the join protocol, Byzantine round-inflation
// resistance, and end-to-end parity/contrast with the no-rounds engine.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/experiment.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/round_protocol.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace czsync::core {
namespace {

struct RoundNode {
  RoundNode(sim::Simulator& sim, net::Network& net, net::ProcId id,
            const SyncConfig& cfg, Duration initial_bias)
      : hw(sim, clk::make_pinned_drift(1e-6, 1.0), Rng(100 + id),
           HwTime(sim.now().raw()) + initial_bias),
        clock(hw),
        proto(sim.trace_port(), net, clock, id, cfg, Rng(200 + id)) {
    net.register_handler(id, [this](const net::Message& m) {
      proto.handle_message(m);
    });
  }
  clk::HardwareClock hw;
  clk::LogicalClock clock;
  RoundSyncProcess proto;
};

class RoundProtocolTest : public ::testing::Test {
 protected:
  void build(const std::vector<double>& biases, int f) {
    const int n = static_cast<int>(biases.size());
    net = std::make_unique<net::Network>(
        sim, net::Topology::full_mesh(n),
        net::make_fixed_delay(Duration::millis(10)), Rng(7));
    cfg.params.sync_int = Duration::seconds(60);
    cfg.params.max_wait = Duration::millis(20);
    cfg.params.way_off = Duration::seconds(1);
    cfg.f = f;
    cfg.convergence = make_convergence("bhhn");
    cfg.random_phase = false;
    for (int p = 0; p < n; ++p) {
      nodes.push_back(std::make_unique<RoundNode>(
          sim, *net, p, cfg, Duration::seconds(biases[static_cast<std::size_t>(p)])));
    }
  }
  void start_all() {
    for (auto& n : nodes) n->proto.start();
  }

  sim::Simulator sim;
  SyncConfig cfg;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<RoundNode>> nodes;
};

TEST_F(RoundProtocolTest, RoundsAdvanceInLockstep) {
  build({0.0, 0.0, 0.0}, 0);
  start_all();
  sim.run_until(SimTau(200.0));
  // Rounds at ~0, 60, 120, 180 -> counter at 5 (started at 1).
  for (auto& n : nodes) {
    EXPECT_EQ(n->proto.round(), 5u);
    EXPECT_EQ(n->proto.stats().rounds_completed, 4u);
    EXPECT_EQ(n->proto.stats().round_mismatch_discards, 0u);
    EXPECT_EQ(n->proto.stats().joins, 0u);
  }
}

TEST_F(RoundProtocolTest, ConvergesLikeNoRounds) {
  build({-0.2, 0.0, 0.2}, 0);
  start_all();
  sim.run_until(SimTau(600.0));
  const double dev = nodes[2]->clock.read().raw() - nodes[0]->clock.read().raw();
  EXPECT_LT(std::abs(dev), 0.05);
}

TEST_F(RoundProtocolTest, StaleRoundRepliesDiscardedByPeers) {
  build({0.0, 0.0, 0.0, 0.0}, 1);
  start_all();
  sim.run_until(SimTau(200.0));
  // Desynchronize node 3's round counter by suspending it for 3 rounds.
  nodes[3]->proto.suspend();
  sim.run_until(SimTau(400.0));
  nodes[3]->proto.resume();
  sim.run_until(SimTau(401.0));
  // Node 3 rejoined at its first post-resume round...
  EXPECT_EQ(nodes[3]->proto.stats().joins, 1u);
  EXPECT_NEAR(static_cast<double>(nodes[3]->proto.round()),
              static_cast<double>(nodes[0]->proto.round()), 1.0);
  // ...and the peers that queried it while it was stale discarded the
  // replies (node 3 was suspended so it produced none; the discards come
  // from ITS own view during the join round).
  EXPECT_GE(nodes[3]->proto.stats().round_mismatch_discards, 2u);
}

TEST_F(RoundProtocolTest, JoinRestoresClockToo) {
  build({0.0, 0.0, 0.0, 0.0}, 1);
  start_all();
  sim.run_until(SimTau(200.0));
  nodes[3]->proto.suspend();
  nodes[3]->clock.adversary_set_clock(nodes[3]->clock.read() + Duration::seconds(50));
  sim.run_until(SimTau(500.0));
  nodes[3]->proto.resume();
  sim.run_until(SimTau(502.0));
  // The join's trimmed-midpoint jump pulled the clock back.
  const double err =
      std::abs(nodes[3]->clock.read().raw() - nodes[0]->clock.read().raw());
  EXPECT_LT(err, 0.2);
}

TEST_F(RoundProtocolTest, ResponderSideMismatchBurden) {
  // While node 3's counter is stale (just after resume, before its own
  // join round fires), peers that query it receive replies tagged with
  // the stale round and must discard them.
  build({0.0, 0.0, 0.0, 0.0}, 1);
  // Stagger phases so node 0's round lands while node 3 is stale: run
  // node 3 with everyone, then suspend it across 3 rounds and resume it
  // just before the others' next round.
  start_all();
  sim.run_until(SimTau(200.0));
  nodes[3]->proto.suspend();
  sim.run_until(SimTau(419.0));
  nodes[3]->proto.resume();  // its join round begins at 419
  // Peers' round at 420 queries node 3; its reply is tagged stale only
  // if it answers before adopting — with the fixed 5 ms delay its join
  // completes within ~10 ms, so race outcomes vary; accept either a
  // peer-side discard or a clean join, but the join must have happened.
  sim.run_until(SimTau(425.0));
  EXPECT_EQ(nodes[3]->proto.stats().joins, 1u);
}

TEST(RoundScenarioTest, SteadyStateParityWithSync) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.horizon = Duration::hours(4);
  s.warmup = Duration::minutes(30);
  s.seed = 11;
  auto base = analysis::run_scenario(s);
  s.protocol = "round";
  auto round = analysis::run_scenario(s);
  // Fault-free, both engines deliver the same guarantee.
  EXPECT_LT(round.max_stable_deviation, round.bounds.max_deviation);
  EXPECT_LT(round.max_stable_deviation.sec(),
            base.max_stable_deviation.sec() * 2.0);
}

TEST(RoundScenarioTest, MobileAdversaryStillBounded) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.protocol = "round";
  s.horizon = Duration::hours(6);
  s.warmup = Duration::minutes(30);
  s.seed = 12;
  s.schedule = adversary::Schedule::random_mobile(
      7, 2, s.model.delta_period, Duration::minutes(5), Duration::minutes(20),
      SimTau(4.5 * 3600.0), Rng(121));
  s.strategy = "two-faced";
  s.strategy_scale = Duration::seconds(30);
  const auto r = analysis::run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
  EXPECT_TRUE(r.all_recovered());
}

TEST(RoundScenarioTest, RoundInflationAttackResisted) {
  // f liars answer every round-tagged ping with round+1000: honest
  // processors discard the tags as mismatched (the liars degrade to
  // silent faults), and a joining victim's (f+1)-st-largest round
  // adoption ignores the inflated values.
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.protocol = "round";
  s.horizon = Duration::hours(6);
  s.warmup = Duration::minutes(30);
  s.seed = 14;
  s.schedule = adversary::Schedule::random_mobile(
      7, 2, s.model.delta_period, Duration::minutes(5), Duration::minutes(20),
      SimTau(4.5 * 3600.0), Rng(141));
  s.strategy = "round-inflation";
  s.strategy_scale = Duration::seconds(30);
  const auto r = analysis::run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
  EXPECT_TRUE(r.all_recovered());
  EXPECT_GT(r.mismatch_discards, 0u);  // the inflated tags were discarded
}

TEST(RoundScenarioTest, RecoveryNeedsJoin) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.protocol = "round";
  s.initial_spread = Duration::millis(20);
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.seed = 13;
  // 10-minute control: the victim's round counter goes ~10 rounds stale.
  s.schedule = adversary::Schedule::single(2, SimTau(3600.0), SimTau(4200.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(20);
  const auto r = analysis::run_scenario(s);
  EXPECT_TRUE(r.all_recovered());
  EXPECT_LT(r.max_recovery_time(), s.model.delta_period);
}

}  // namespace
}  // namespace czsync::core
