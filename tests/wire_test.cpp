// Wire-format hygiene tests: the explicit encodings that cross process
// boundaries in the rt backend.
//
// Three layers, bottom up: the shared buffer primitives (trace/wire.h --
// LEB128 varints, padded patchable varints, bit-exact doubles), the
// datagram message codec (core/wire.h -- every Body alternative, hostile
// input), and the incremental live capture (trace/live_writer.h -- a
// well-formed file after every flush). The round-trip sweeps are
// fuzz-ish by construction: boundary values (+-inf, NaN payloads,
// denormals, signed zero, max ProcId) plus seeded-random messages
// re-encoded and compared byte for byte.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "core/wire.h"
#include "net/message.h"
#include "trace/format.h"
#include "trace/live_writer.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "trace/wire.h"
#include "util/rng.h"

namespace czsync {
namespace {

using trace::wire::Reader;

// ---------- trace/wire.h primitives ----------

TEST(WirePrimitives, VarintBoundaryRoundTrip) {
  const std::uint64_t cases[] = {
      0,    1,    127,  128,  129,  16383, 16384,
      (1ull << 32) - 1, 1ull << 32, (1ull << 63) - 1, 1ull << 63,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::vector<unsigned char> buf;
    trace::wire::put_varint(buf, v);
    Reader r(buf.data(), buf.size());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.done());
  }
}

TEST(WirePrimitives, VarintMinimalLengths) {
  std::vector<unsigned char> buf;
  trace::wire::put_varint(buf, 0);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  trace::wire::put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  trace::wire::put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  trace::wire::put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(WirePrimitives, PaddedVarintDecodesLikePlain) {
  for (const std::uint64_t v : {0ull, 1ull, 127ull, 300ull, 1234567ull}) {
    std::vector<unsigned char> buf;
    trace::wire::put_varint_padded(buf, v, 5);
    EXPECT_EQ(buf.size(), 5u);
    Reader r(buf.data(), buf.size());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.done());
  }
}

TEST(WirePrimitives, PaddedVarintIsPatchable) {
  // The live writer's count field: re-encoding a bigger value in place
  // must keep the same width and decode to the new value.
  std::vector<unsigned char> buf;
  trace::wire::put_varint_padded(buf, 3, 5);
  std::vector<unsigned char> patch;
  trace::wire::put_varint_padded(patch, 9876543, 5);
  ASSERT_EQ(patch.size(), buf.size());
  std::memcpy(buf.data(), patch.data(), patch.size());
  Reader r(buf.data(), buf.size());
  EXPECT_EQ(r.varint(), 9876543u);
  EXPECT_TRUE(r.ok());
}

TEST(WirePrimitives, PaddedVarintOverflowThrows) {
  std::vector<unsigned char> buf;
  EXPECT_THROW(trace::wire::put_varint_padded(buf, 1ull << 35, 5),
               std::invalid_argument);
}

TEST(WirePrimitives, DoubleBitExactRoundTrip) {
  const double denormal_min = std::numeric_limits<double>::denorm_min();
  const double cases[] = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      denormal_min,
      -denormal_min,
      std::numeric_limits<double>::quiet_NaN(),
      std::nan("0xbeef"),  // NaN with a payload: bits must survive
      1.0 + std::numeric_limits<double>::epsilon(),
  };
  for (const double v : cases) {
    std::vector<unsigned char> buf;
    trace::wire::put_f64(buf, v);
    ASSERT_EQ(buf.size(), 8u);
    Reader r(buf.data(), buf.size());
    const double back = r.f64();
    EXPECT_TRUE(r.ok());
    std::uint64_t in_bits = 0;
    std::uint64_t out_bits = 0;
    std::memcpy(&in_bits, &v, 8);
    std::memcpy(&out_bits, &back, 8);
    EXPECT_EQ(in_bits, out_bits);  // bit-exact, not value-equal
  }
}

TEST(WirePrimitives, ReaderFailsClosed) {
  // Truncated varint: continuation bit set, then the buffer ends.
  const unsigned char trunc[] = {0x80, 0x80};
  Reader r1(trunc, sizeof trunc);
  EXPECT_EQ(r1.varint(), 0u);
  EXPECT_FALSE(r1.ok());
  // Overlong varint: more than 64 bits of payload.
  const unsigned char over[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                0xff, 0xff, 0xff, 0xff, 0x7f};
  Reader r2(over, sizeof over);
  (void)r2.varint();
  EXPECT_FALSE(r2.ok());
  // Short double.
  const unsigned char shortf[] = {1, 2, 3};
  Reader r3(shortf, sizeof shortf);
  (void)r3.f64();
  EXPECT_FALSE(r3.ok());
  // After any failure the reader stays failed.
  EXPECT_EQ(r3.remaining(), 0u);
}

// ---------- core/wire.h: message datagrams ----------

std::vector<unsigned char> encode(const net::Message& m) {
  std::vector<unsigned char> buf;
  core::encode_message(buf, m);
  return buf;
}

void expect_round_trip(const net::Message& m, int n) {
  const auto buf = encode(m);
  const auto back = core::decode_message(buf.data(), buf.size(), n);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, m.from);
  EXPECT_EQ(back->to, m.to);
  EXPECT_EQ(back->body.index(), m.body.index());
  // Re-encoding must reproduce the exact bytes: the codec is canonical.
  EXPECT_EQ(encode(*back), buf);
}

TEST(MessageWire, EveryBodyAlternativeRoundTrips) {
  const LogicalTime clk = LogicalTime(1234.5678901234);
  expect_round_trip({0, 1, net::PingReq{42}}, 3);
  expect_round_trip({1, 0, net::PingResp{42, clk}}, 3);
  expect_round_trip({2, 0, net::RoundPingReq{7, 99}}, 3);
  expect_round_trip({0, 2, net::RoundPingResp{7, 99, clk}}, 3);
  expect_round_trip(
      {1, 2, net::StRoundMsg{5, {{0, 0xdeadbeef}, {2, 0xfeedface}}}}, 3);
  expect_round_trip({2, 1, net::RefreshAnnounce{11, 0x123456789abcdefull}}, 3);
  expect_round_trip({0, 1, net::TimestampReq{314}}, 3);
  expect_round_trip({1, 0, net::TimestampResp{314, clk}}, 3);
}

TEST(MessageWire, ClockBoundaryValues) {
  const double denormal = std::numeric_limits<double>::denorm_min();
  for (const double v : {std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(), denormal,
                         -denormal, -0.0,
                         std::numeric_limits<double>::quiet_NaN()}) {
    const net::Message m{0, 1, net::PingResp{99, LogicalTime(v)}};
    const auto buf = encode(m);
    const auto back = core::decode_message(buf.data(), buf.size(), 2);
    ASSERT_TRUE(back.has_value());
    const auto& resp = std::get<net::PingResp>(back->body);
    std::uint64_t in_bits = 0;
    std::uint64_t out_bits = 0;
    const double in_v = v;
    const double out_v = resp.responder_clock.raw();
    std::memcpy(&in_bits, &in_v, 8);
    std::memcpy(&out_bits, &out_v, 8);
    EXPECT_EQ(in_bits, out_bits);
  }
}

TEST(MessageWire, MaxProcIdRoundTrips) {
  const int n = std::numeric_limits<int>::max();
  expect_round_trip({n - 1, 0, net::PingReq{1}}, n);
  expect_round_trip({0, n - 1, net::PingReq{1}}, n);
}

TEST(MessageWire, NegativeIdThrowsOnEncode) {
  std::vector<unsigned char> buf;
  EXPECT_THROW(core::encode_message(buf, {-1, 0, net::PingReq{}}),
               std::invalid_argument);
  EXPECT_THROW(core::encode_message(buf, {0, -3, net::PingReq{}}),
               std::invalid_argument);
}

TEST(MessageWire, HostileInputNeverDecodes) {
  const auto good = encode({0, 1, net::PingResp{42, LogicalTime(1.5)}});
  ASSERT_TRUE(core::decode_message(good.data(), good.size(), 3).has_value());

  // Every strict prefix is a truncation and must fail.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(core::decode_message(good.data(), len, 3).has_value())
        << "prefix length " << len;
  }
  // Trailing garbage must fail (a datagram is exactly one message).
  auto extra = good;
  extra.push_back(0);
  EXPECT_FALSE(core::decode_message(extra.data(), extra.size(), 3));

  // Bad magic.
  auto bad = good;
  bad[0] ^= 0xff;
  EXPECT_FALSE(core::decode_message(bad.data(), bad.size(), 3));

  // Ids out of [0, n): from = 0, to = 1 valid only for n >= 2.
  EXPECT_FALSE(core::decode_message(good.data(), good.size(), 1));

  // Self-send: from == to.
  const auto self = encode({1, 1, net::PingReq{}});
  EXPECT_FALSE(core::decode_message(self.data(), self.size(), 3));

  // Unknown body kind: patch the kind varint (magic 4 + from 1 + to 1).
  auto unk = encode({0, 1, net::PingReq{0}});
  unk[6] = 0x7f;
  EXPECT_FALSE(core::decode_message(unk.data(), unk.size(), 3));
}

TEST(MessageWire, OversizedSignatureVectorRejected) {
  // Hand-build an StRoundMsg claiming 2^30 signatures with no payload: a
  // naive decoder would resize the vector and die before noticing the
  // buffer is 14 bytes long.
  std::vector<unsigned char> buf = {'C', 'Z', 'U', '1'};
  trace::wire::put_varint(buf, 0);              // from
  trace::wire::put_varint(buf, 1);              // to
  trace::wire::put_varint(buf, 4);              // StRoundMsg
  trace::wire::put_varint(buf, 3);              // round
  trace::wire::put_varint(buf, 1ull << 30);     // sig count, absurd
  EXPECT_FALSE(core::decode_message(buf.data(), buf.size(), 3).has_value());
}

TEST(MessageWire, RandomMessagesReEncodeByteIdentical) {
  Rng rng(0xC0FFEEu);
  const int n = 1000;
  for (int i = 0; i < 500; ++i) {
    net::Message m;
    m.from = static_cast<int>(rng.uniform_int(0, n - 1));
    do {
      m.to = static_cast<int>(rng.uniform_int(0, n - 1));
    } while (m.to == m.from);
    switch (rng.uniform_int(0, 7)) {
      case 0: m.body = net::PingReq{static_cast<std::uint64_t>(
            rng.uniform_int(0, 1 << 30)) * 977u};
        break;
      case 1:
        m.body = net::PingResp{static_cast<std::uint64_t>(
                                   rng.uniform_int(0, 1 << 30)),
                               LogicalTime(rng.uniform(-1e9, 1e9))};
        break;
      case 2:
        m.body = net::RoundPingReq{
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20))};
        break;
      case 3:
        m.body = net::RoundPingResp{
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)),
            LogicalTime(rng.uniform(-1e6, 1e6))};
        break;
      case 4: {
        net::StRoundMsg st;
        st.round = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 16));
        const int sigs = static_cast<int>(rng.uniform_int(0, 5));
        for (int s = 0; s < sigs; ++s) {
          st.sigs.push_back(net::Signature{
              static_cast<int>(rng.uniform_int(0, n - 1)),
              static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))});
        }
        m.body = std::move(st);
        break;
      }
      case 5:
        m.body = net::RefreshAnnounce{
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))};
        break;
      case 6:
        m.body = net::TimestampReq{
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))};
        break;
      default:
        m.body = net::TimestampResp{
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
            LogicalTime(rng.uniform(-1e3, 1e3))};
        break;
    }
    expect_round_trip(m, n);
  }
}

// ---------- trace record encoding parity ----------

TEST(TraceWire, RecordEncodingMatchesFileFormat) {
  // put_record is THE encoding: a file written through write_trace_file
  // must contain exactly the bytes put_record produces for each record.
  std::vector<trace::TraceRecord> records;
  records.push_back(trace::adj_write(SimTau(1.25), 0, trace::AdjKind::Sync, Duration(-0.5), Duration(0.25)));
  records.push_back(trace::round_close(SimTau(2.0), 1, 7, trace::kRoundWayOff));
  trace::TraceData data;
  data.records = records;

  const std::string path =
      testing::TempDir() + "/wire_parity.cztrace";
  trace::write_trace_file(path, data);
  const trace::TraceData back = trace::read_trace_file(path);
  ASSERT_EQ(back.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::vector<unsigned char> a;
    std::vector<unsigned char> b;
    trace::wire::put_record(a, records[i]);
    trace::wire::put_record(b, back.records[i]);
    EXPECT_EQ(a, b) << "record " << i;
  }
  std::remove(path.c_str());
}

// ---------- trace/live_writer.h: incremental capture ----------

TEST(LiveWriter, FileIsWellFormedAfterEveryFlush) {
  const std::string path = testing::TempDir() + "/live.cztrace";
  trace::LiveTraceWriter writer(path);

  // Even before any record: a valid empty trace.
  writer.flush();
  EXPECT_EQ(trace::read_trace_file(path).records.size(), 0u);

  std::vector<trace::TraceRecord> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(trace::adj_write(SimTau(i * 0.5), i % 3, trace::AdjKind::Sync, Duration(0.001 * i), Duration(0.01 * i)));
  }
  writer.append(batch.data(), 4);
  writer.flush();
  EXPECT_EQ(trace::read_trace_file(path).records.size(), 4u);

  writer.append(batch.data() + 4, 6);
  writer.flush();
  const trace::TraceData all = trace::read_trace_file(path);
  ASSERT_EQ(all.records.size(), 10u);
  EXPECT_EQ(writer.count(), 10u);
  for (std::size_t i = 0; i < all.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(all.records[i].t, 0.5 * static_cast<double>(i));
  }
  std::remove(path.c_str());
}

TEST(LiveWriter, UnflushedTailIsInvisibleNotCorrupting) {
  // Appended-but-unflushed records must not leave the on-disk file
  // malformed — this is the SIGKILL story: the file always parses.
  const std::string path = testing::TempDir() + "/live_tail.cztrace";
  {
    trace::LiveTraceWriter writer(path);
    const auto r = trace::adv_break_in(SimTau(1.0), 2);
    writer.append(&r, 1);
    writer.flush();
    writer.append(&r, 1);  // buffered only; destructor will flush it
    EXPECT_EQ(trace::read_trace_file(path).records.size(), 1u);
  }
  // Destructor flushed the tail.
  EXPECT_EQ(trace::read_trace_file(path).records.size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceSink, SpillKeepsEveryRecordInOrder) {
  trace::TraceSink sink;  // unbounded mode (no flight-recorder cap)
  std::vector<trace::TraceRecord> spilled;
  sink.set_spill(4, [&](const trace::TraceRecord* r, std::size_t count) {
    spilled.insert(spilled.end(), r, r + count);
  });
  for (int i = 0; i < 11; ++i) {
    sink.record(trace::adv_break_in(SimTau(i), i));
  }
  sink.flush_spill();
  ASSERT_EQ(spilled.size(), 11u);
  for (int i = 0; i < 11; ++i) {
    EXPECT_DOUBLE_EQ(spilled[static_cast<std::size_t>(i)].t, i);
  }
  EXPECT_EQ(sink.spilled(), 11u);
  EXPECT_FALSE(sink.truncated());
}

}  // namespace
}  // namespace czsync
