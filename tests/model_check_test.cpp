// Model-checking style tests: randomized operation sequences checked
// against simple reference models, and algebraic properties of the
// convergence functions that the Lemma-7 proof machinery relies on.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/convergence.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace czsync {
namespace {

// ---------- EventQueue vs a reference multimap model ----------

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  sim::EventQueue q;
  // Reference: (time, id) -> alive, plus the same FIFO-by-id order.
  std::multimap<std::pair<double, sim::EventId>, int> ref;
  std::map<sim::EventId, decltype(ref)::iterator> live;
  std::vector<int> popped_q, popped_ref;
  int payload = 0;

  for (int op = 0; op < 3000; ++op) {
    const double roll = rng.uniform01();
    if (roll < 0.55) {  // push
      const double t = rng.uniform(0.0, 100.0);
      const int value = payload++;
      const sim::EventId id =
          q.push(SimTau(t), [&popped_q, value] { popped_q.push_back(value); });
      live.emplace(id, ref.emplace(std::make_pair(t, id), value));
    } else if (roll < 0.75) {  // cancel a random live event
      if (live.empty()) continue;
      auto it = live.begin();
      std::advance(it, rng.uniform_int(0, static_cast<long>(live.size()) - 1));
      EXPECT_TRUE(q.cancel(it->first));
      ref.erase(it->second);
      live.erase(it);
    } else if (roll < 0.8) {  // cancel something dead/unknown
      EXPECT_FALSE(q.cancel(999999 + static_cast<sim::EventId>(op)));
    } else {  // pop
      ASSERT_EQ(q.empty(), ref.empty());
      if (ref.empty()) continue;
      SimTau t{};
      q.pop(t)();
      auto first = ref.begin();
      EXPECT_DOUBLE_EQ(t.raw(), first->first.first);
      popped_ref.push_back(first->second);
      live.erase(first->first.second);
      ref.erase(first);
      ASSERT_EQ(popped_q.size(), popped_ref.size());
      EXPECT_EQ(popped_q.back(), popped_ref.back());
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  // Drain completely and compare the full pop order.
  while (!q.empty()) {
    SimTau t{};
    q.pop(t)();
    popped_ref.push_back(ref.begin()->second);
    ref.erase(ref.begin());
  }
  EXPECT_EQ(popped_q, popped_ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------- convergence-function algebra ----------

std::vector<core::PeerEstimate> shifted(
    const std::vector<core::PeerEstimate>& est, double c) {
  auto out = est;
  for (auto& e : out) {
    e.over += Duration::seconds(c);
    e.under += Duration::seconds(c);
  }
  return out;
}

std::vector<core::PeerEstimate> random_estimates(Rng& rng, int n,
                                                 double spread) {
  std::vector<core::PeerEstimate> est;
  est.push_back(core::PeerEstimate::from(core::Estimate::self()));
  for (int i = 1; i < n; ++i) {
    const double d = rng.uniform(-spread, spread);
    const double a = rng.uniform(0.0, spread / 10);
    est.push_back({Duration::seconds(d + a), Duration::seconds(d - a)});
  }
  return est;
}

class ConvergenceAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

// Translation equivariance of the order statistics: shifting every
// estimate by c shifts m and M by c. (The full adjustment is NOT simply
// shifted because of the min(m,0)/max(M,0) own-clock terms — that
// nonlinearity is the own-clock preservation feature.)
TEST_P(ConvergenceAlgebra, SelectionIsTranslationEquivariant) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const auto est = random_estimates(rng, 7, 1.0);
    const double c = rng.uniform(-5.0, 5.0);
    const auto shifted_est = shifted(est, c);
    EXPECT_NEAR(core::select_low(shifted_est, 2).sec(),
                core::select_low(est, 2).sec() + c, 1e-12);
    EXPECT_NEAR(core::select_high(shifted_est, 2).sec(),
                core::select_high(est, 2).sec() + c, 1e-12);
  }
}

// The adjustment never exceeds the extreme estimates: the new clock
// stays within [min under, max over] of the peer readings (with the own
// clock counting as 0). This is the containment Lemma 7(i) builds on.
TEST_P(ConvergenceAlgebra, AdjustmentStaysWithinEstimateHull) {
  Rng rng(GetParam() + 100);
  core::BhhnConvergence fn;
  for (int trial = 0; trial < 200; ++trial) {
    const auto est = random_estimates(rng, 7, 2.0);
    double lo = 0.0, hi = 0.0;  // self contributes 0
    for (const auto& e : est) {
      lo = std::min(lo, e.under.sec());
      hi = std::max(hi, e.over.sec());
    }
    const auto r = fn.apply(est, 2, Duration::seconds(1));
    EXPECT_GE(r.adjustment.sec(), lo - 1e-12);
    EXPECT_LE(r.adjustment.sec(), hi + 1e-12);
  }
}

// Monotonicity: raising any single estimate never lowers the adjustment.
TEST_P(ConvergenceAlgebra, MonotoneInEachEstimate) {
  Rng rng(GetParam() + 200);
  core::BhhnConvergence fn;
  for (int trial = 0; trial < 100; ++trial) {
    auto est = random_estimates(rng, 7, 1.0);
    const auto base = fn.apply(est, 2, Duration::seconds(100));
    const auto idx = static_cast<std::size_t>(rng.uniform_int(1, 6));
    est[idx].over += Duration::seconds(0.5);
    est[idx].under += Duration::seconds(0.5);
    const auto raised = fn.apply(est, 2, Duration::seconds(100));
    EXPECT_GE(raised.adjustment.sec(), base.adjustment.sec() - 1e-12);
  }
}

// The Byzantine-robustness core of Figure 1: whatever values f entries
// take, the (f+1)-st order statistics stay inside the HONEST hull —
// m in [min honest over, max honest over] and M in [min honest under,
// max honest under]. This is the reason f liars cannot drag a correct
// clock beyond the range spanned by correct estimates.
TEST_P(ConvergenceAlgebra, FLiarsCannotEscapeHonestHull) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 200; ++trial) {
    auto est = random_estimates(rng, 7, 1.0);
    // Entries 1 and 2 become the adversary's; 0 and 3..6 remain honest.
    double over_lo = 1e18, over_hi = -1e18;
    double under_lo = 1e18, under_hi = -1e18;
    for (std::size_t i : {0u, 3u, 4u, 5u, 6u}) {
      over_lo = std::min(over_lo, est[i].over.sec());
      over_hi = std::max(over_hi, est[i].over.sec());
      under_lo = std::min(under_lo, est[i].under.sec());
      under_hi = std::max(under_hi, est[i].under.sec());
    }
    for (std::size_t i : {1u, 2u}) {
      const double a = rng.uniform(-1e6, 1e6);
      const double b = rng.uniform(-1e6, 1e6);
      est[i] = {Duration::seconds(std::max(a, b)), Duration::seconds(std::min(a, b))};
    }
    const double m = core::select_low(est, 2).sec();
    const double big_m = core::select_high(est, 2).sec();
    EXPECT_GE(m, over_lo - 1e-12);
    EXPECT_LE(m, over_hi + 1e-12);
    EXPECT_GE(big_m, under_lo - 1e-12);
    EXPECT_LE(big_m, under_hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceAlgebra,
                         ::testing::Values(11u, 12u, 13u));

}  // namespace
}  // namespace czsync
