#!/usr/bin/env python3
"""ctest entry `lint_clang_tidy`: clang-tidy over src/ (config: .clang-tidy).

Runs clang-tidy against the main build's compile_commands.json
(CMAKE_EXPORT_COMPILE_COMMANDS is always on — see the top-level
CMakeLists). Exits 77 when clang-tidy is not installed; the add_test
entry declares SKIP_RETURN_CODE 77, so ctest reports the gate as
SKIPPED instead of failing on toolchains without clang-tidy.

Usage: run_clang_tidy.py --source-dir <repo> --build-dir <build>
Exit codes: 0 clean, 1 findings, 2 usage/setup error, 77 tidy absent.
"""

import argparse
import os
import shutil
import subprocess
import sys

TIDY_NAMES = ("clang-tidy", "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
              "clang-tidy-15")
SKIP = 77


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--source-dir", required=True)
    ap.add_argument("--build-dir", required=True)
    args = ap.parse_args()

    tidy = next(
        (p for name in TIDY_NAMES if (p := shutil.which(name)) is not None),
        None,
    )
    if tidy is None:
        print("clang-tidy not found on PATH; skipping tidy gate")
        return SKIP

    compdb = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.isfile(compdb):
        sys.stderr.write(
            f"error: missing {compdb} -- configure with "
            "CMAKE_EXPORT_COMPILE_COMMANDS=ON "
            "(the top-level CMakeLists does this)\n"
        )
        return 2

    sources = []
    for root, dirs, files in os.walk(os.path.join(args.source_dir, "src")):
        dirs.sort()
        sources.extend(
            os.path.join(root, f) for f in sorted(files) if f.endswith(".cpp")
        )
    if not sources:
        sys.stderr.write(f"error: no sources under {args.source_dir}/src\n")
        return 2

    print(f"clang-tidy ({tidy}) over {len(sources)} file(s)")
    proc = subprocess.run([tidy, "-p", args.build_dir, "--quiet", *sources])
    if proc.returncode != 0:
        print(f"clang-tidy reported findings (exit {proc.returncode})")
        return 1
    print("clang-tidy clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
