// Tests for the config parser, duration parsing, scenario_from_config
// and the CSV trace writers.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/trace_io.h"
#include "util/config.h"

namespace czsync {
namespace {

// ---------- parse_duration ----------

TEST(DurationParseTest, Units) {
  EXPECT_DOUBLE_EQ(parse_duration("50ms")->sec(), 0.05);
  EXPECT_DOUBLE_EQ(parse_duration("250us")->sec(), 2.5e-4);
  EXPECT_DOUBLE_EQ(parse_duration("2.5s")->sec(), 2.5);
  EXPECT_DOUBLE_EQ(parse_duration("10m")->sec(), 600.0);
  EXPECT_DOUBLE_EQ(parse_duration("10min")->sec(), 600.0);
  EXPECT_DOUBLE_EQ(parse_duration("1.5h")->sec(), 5400.0);
  EXPECT_DOUBLE_EQ(parse_duration("42")->sec(), 42.0);  // bare seconds
}

TEST(DurationParseTest, NegativeAndScientific) {
  EXPECT_DOUBLE_EQ(parse_duration("-30s")->sec(), -30.0);
  EXPECT_DOUBLE_EQ(parse_duration("1e-3s")->sec(), 1e-3);
  EXPECT_DOUBLE_EQ(parse_duration(" 5ms ")->sec(), 0.005);
}

TEST(DurationParseTest, Malformed) {
  EXPECT_FALSE(parse_duration("").has_value());
  EXPECT_FALSE(parse_duration("fast").has_value());
  EXPECT_FALSE(parse_duration("10 parsecs").has_value());
  EXPECT_FALSE(parse_duration("10x").has_value());
}

// ---------- Config ----------

TEST(ConfigTest, ParseBasics) {
  const auto c = Config::parse(
      "# comment\n"
      "n = 7\n"
      "rho=1e-4   # trailing comment\n"
      "\n"
      "  name = hello world \n");
  EXPECT_TRUE(c.has("n"));
  EXPECT_EQ(c.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(c.get_double("rho", 0.0), 1e-4);
  EXPECT_EQ(c.get_string("name", ""), "hello world");
  EXPECT_EQ(c.get_int("absent", 42), 42);
}

TEST(ConfigTest, LaterAssignmentWins) {
  const auto c = Config::parse("a = 1\na = 2\n");
  EXPECT_EQ(c.get_int("a", 0), 2);
}

TEST(ConfigTest, Booleans) {
  const auto c = Config::parse("t1=true\nt2=yes\nt3=on\nt4=1\nf1=false\nf2=0\n");
  for (const char* k : {"t1", "t2", "t3", "t4"}) EXPECT_TRUE(c.get_bool(k, false));
  EXPECT_FALSE(c.get_bool("f1", true));
  EXPECT_FALSE(c.get_bool("f2", true));
  EXPECT_TRUE(c.get_bool("absent", true));
}

TEST(ConfigTest, Durations) {
  const auto c = Config::parse("horizon = 6h\nsync = 60s\n");
  EXPECT_DOUBLE_EQ(c.get_duration("horizon", Duration::zero()).sec(), 21600.0);
  EXPECT_DOUBLE_EQ(c.get_duration("sync", Duration::zero()).sec(), 60.0);
  EXPECT_DOUBLE_EQ(c.get_duration("absent", Duration::millis(5)).sec(), 0.005);
}

TEST(ConfigTest, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("just a line\n"), std::invalid_argument);
  EXPECT_THROW(Config::parse("= value\n"), std::invalid_argument);
}

TEST(ConfigTest, MalformedValuesThrow) {
  const auto c = Config::parse("n = seven\nb = maybe\nd = soon\n");
  EXPECT_THROW((void)c.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)c.get_bool("b", false), std::invalid_argument);
  EXPECT_THROW((void)c.get_duration("d", Duration::zero()), std::invalid_argument);
}

TEST(ConfigTest, UnusedKeysTracked) {
  const auto c = Config::parse("used = 1\nunused = 2\n");
  (void)c.get_int("used", 0);
  const auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(ConfigTest, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/path.conf"), std::runtime_error);
}

}  // namespace
}  // namespace czsync

namespace czsync::analysis {
namespace {

TEST(ScenarioFromConfigTest, Defaults) {
  const auto s = scenario_from_config(Config::parse(""));
  EXPECT_EQ(s.model.n, 4);  // ModelParams defaults
  EXPECT_EQ(s.model.f, 1);
  EXPECT_TRUE(s.schedule.empty());
  EXPECT_EQ(s.convergence, "bhhn");
}

TEST(ScenarioFromConfigTest, FullScenario) {
  const auto s = scenario_from_config(Config::parse(
      "n = 10\nf = 3\nrho = 1e-5\ndelta = 20ms\ndelta_period = 30m\n"
      "sync_int = 30s\nconvergence = midpoint\ndrift = wander\n"
      "delay = jitter\ntopology = ring\ninitial_spread = 1s\n"
      "horizon = 2h\nwarmup = 10m\nseed = 99\nrate_discipline = true\n"));
  EXPECT_EQ(s.model.n, 10);
  EXPECT_EQ(s.model.f, 3);
  EXPECT_DOUBLE_EQ(s.model.rho, 1e-5);
  EXPECT_DOUBLE_EQ(s.model.delta.sec(), 0.02);
  EXPECT_DOUBLE_EQ(s.model.delta_period.sec(), 1800.0);
  EXPECT_EQ(s.convergence, "midpoint");
  EXPECT_EQ(s.drift, Scenario::DriftKind::Wander);
  EXPECT_EQ(s.delay, Scenario::DelayKind::Jitter);
  EXPECT_EQ(s.topology, Scenario::TopologyKind::Ring);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_TRUE(s.rate_discipline);
}

TEST(ScenarioFromConfigTest, SingleAdversary) {
  const auto s = scenario_from_config(Config::parse(
      "adversary = single\nvictim = 3\nbreak_at = 1h\nleave_at = 70m\n"
      "strategy = clock-smash\nstrategy_scale = 5m\n"));
  ASSERT_EQ(s.schedule.intervals().size(), 1u);
  EXPECT_EQ(s.schedule.intervals()[0].proc, 3);
  EXPECT_DOUBLE_EQ(s.schedule.intervals()[0].start.raw(), 3600.0);
  EXPECT_DOUBLE_EQ(s.schedule.intervals()[0].end.raw(), 4200.0);
  EXPECT_EQ(s.strategy, "clock-smash");
  EXPECT_DOUBLE_EQ(s.strategy_scale.sec(), 300.0);
}

TEST(ScenarioFromConfigTest, MobileAdversaryIsFLimited) {
  const auto s = scenario_from_config(
      Config::parse("adversary = mobile\nhorizon = 8h\nseed = 3\n"));
  EXPECT_FALSE(s.schedule.empty());
  EXPECT_TRUE(s.schedule.is_f_limited(s.model.f, s.model.delta_period));
}

TEST(ScenarioFromConfigTest, BadEnumsThrow) {
  EXPECT_THROW(scenario_from_config(Config::parse("drift = sideways\n")),
               std::invalid_argument);
  EXPECT_THROW(scenario_from_config(Config::parse("delay = warp\n")),
               std::invalid_argument);
  EXPECT_THROW(scenario_from_config(Config::parse("topology = torus\n")),
               std::invalid_argument);
  EXPECT_THROW(scenario_from_config(Config::parse("adversary = quantum\n")),
               std::invalid_argument);
}

// ---------- the shipped config files must keep working ----------

class ShippedConfigTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShippedConfigTest, ParsesBuildsAndRuns) {
  const std::string path =
      std::string(CZSYNC_SOURCE_DIR) + "/tools/configs/" + GetParam();
  const auto cfg = Config::load(path);
  auto s = scenario_from_config(cfg);
  // Keep the regression fast: trim the horizon, keep everything else.
  s.horizon = Duration::minutes(30);
  s.warmup = Duration::zero();
  if (!s.schedule.empty()) {
    EXPECT_TRUE(s.schedule.is_f_limited(s.model.f, s.model.delta_period))
        << GetParam();
  }
  const auto r = run_scenario(s);
  EXPECT_GT(r.samples, 0u) << GetParam();
  EXPECT_TRUE(cfg.unused_keys().empty() ||
              // `single`-adversary configs legitimately skip mobile keys.
              cfg.unused_keys().size() <= 1)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Files, ShippedConfigTest,
                         ::testing::Values("wan_byzantine.conf",
                                           "recovery_drill.conf",
                                           "lan_disciplined.conf"),
                         [](const auto& info) {
                           std::string n = info.param;
                           return n.substr(0, n.find('.'));
                         });

// ---------- trace writers ----------

RunResult small_run(bool series) {
  Scenario s;
  s.model.n = 4;
  s.model.f = 1;
  s.horizon = Duration::minutes(30);
  s.sample_period = Duration::minutes(1);
  s.record_series = series;
  s.schedule = adversary::Schedule::single(1, SimTau(300.0), SimTau(360.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::seconds(5);
  return run_scenario(s);
}

TEST(TraceIoTest, SeriesCsvShape) {
  const auto r = small_run(true);
  std::ostringstream os;
  write_series_csv(os, r);
  const std::string text = os.str();
  // Header + one line per sample.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            r.series.size() + 1);
  EXPECT_NE(text.find("bias_3"), std::string::npos);
  EXPECT_NE(text.find("status_0"), std::string::npos);
  EXPECT_NE(text.find("faulty"), std::string::npos);     // the break-in shows
  EXPECT_NE(text.find("recovering"), std::string::npos);
}

TEST(TraceIoTest, SeriesCsvThrowsWithoutRecording) {
  const auto r = small_run(false);
  std::ostringstream os;
  EXPECT_THROW(write_series_csv(os, r), std::invalid_argument);
  EXPECT_TRUE(os.str().empty());  // nothing written before the throw
}

TEST(TraceIoTest, RecoveriesCsv) {
  const auto r = small_run(false);
  std::ostringstream os;
  write_recoveries_csv(os, r);
  const std::string text = os.str();
  EXPECT_NE(text.find("proc,left_at"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);  // header + 1
}

TEST(TraceIoTest, SummaryCsvSingleRow) {
  const auto r = small_run(false);
  std::ostringstream os;
  write_summary_csv(os, r);
  const std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("gamma_bound_s"), std::string::npos);
}

}  // namespace
}  // namespace czsync::analysis
