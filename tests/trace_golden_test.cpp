// Golden-trace regression gate.
//
// Runs the E1-style golden scenario (n=7/f=2, mobile clock-smash-random
// adversary, stochastic delays, drift) with a full-capture TraceSink and
// compares the serialized czsync-trace-v1 bytes against the committed
// tests/golden/e1.cztrace. This supersedes the old FNV-hash golden test
// in event_pool_test.cpp: the trace covers every event fire, message
// send/deliver/drop, adversary action, adj write, round and invariant
// sample of the run, so ANY behavioral divergence — event reordering,
// RNG-sequence drift, a numeric change in the convergence function —
// trips it, and `czsync_trace diff` on the two files then pinpoints the
// exact first divergent record instead of leaving a bare hash mismatch.
//
// Re-recording after a DELIBERATE semantic change:
//   CZSYNC_REGEN_GOLDEN=1 ./trace_golden_test
// then commit the rewritten tests/golden/e1.cztrace and explain the
// divergence in the commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "adversary/schedule.h"
#include "analysis/experiment.h"
#include "trace/diff.h"
#include "trace/format.h"
#include "trace/sink.h"
#include "util/rng.h"

namespace czsync {
namespace {

const char* golden_path() {
  return CZSYNC_SOURCE_DIR "/tests/golden/e1.cztrace";
}

// Identical to the scenario the retired FNV-hash golden test used, so
// this gate covers the same run the hash covered since the pool rewrite.
analysis::Scenario golden_scenario() {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::hours(1);
  s.sample_period = Duration::seconds(15);
  s.seed = 7;
  s.schedule = adversary::Schedule::random_mobile(
      s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
      Duration::minutes(20), SimTau(0.75 * 3600.0), Rng(1007));
  s.strategy = "clock-smash-random";
  s.strategy_scale = Duration::minutes(10);
  s.record_series = true;
  return s;
}

std::string serialize(const trace::TraceSink& sink) {
  std::ostringstream os(std::ios::binary);
  trace::write_trace(os, sink);
  return std::move(os).str();
}

TEST(TraceGoldenTest, E1RunMatchesCommittedGoldenTrace) {
  trace::TraceSink sink;
  const auto r = analysis::run_scenario(golden_scenario(), &sink);
  // Structural sanity first: the trace must agree with the run's own
  // counters, independent of the golden file.
  ASSERT_EQ(sink.total(), sink.size());
  EXPECT_EQ(sink.dropped(), 0u);
  std::uint64_t fires = 0, sends = 0;
  for (const auto& rec : sink.snapshot()) {
    if (rec.kind == trace::RecordKind::EventFire) ++fires;
    if (rec.kind == trace::RecordKind::MsgSend) ++sends;
  }
  EXPECT_EQ(fires, r.events_executed);
  EXPECT_EQ(sends, r.messages_sent);

  const std::string fresh = serialize(sink);
  // Documented regen knob for the committed golden trace; the run's
  // behaviour (and bytes) do not depend on it.
  if (std::getenv("CZSYNC_REGEN_GOLDEN") != nullptr) {  // lint: ambient-env
    std::ofstream f(golden_path(), std::ios::binary);
    ASSERT_TRUE(f) << "cannot write " << golden_path();
    f.write(fresh.data(), static_cast<std::streamsize>(fresh.size()));
    GTEST_SKIP() << "re-recorded " << golden_path() << " (" << fresh.size()
                 << " bytes); commit it";
  }

  std::ifstream f(golden_path(), std::ios::binary);
  ASSERT_TRUE(f) << "missing " << golden_path()
                 << " — record it with CZSYNC_REGEN_GOLDEN=1";
  std::ostringstream buf(std::ios::binary);
  buf << f.rdbuf();
  const std::string golden = std::move(buf).str();

  if (fresh != golden) {
    // Byte mismatch: decode both and report the first divergent record —
    // the actionable version of the old hash-mismatch failure.
    std::istringstream fs(fresh, std::ios::binary);
    std::istringstream gs(golden, std::ios::binary);
    const auto a = trace::read_trace(fs);
    const auto b = trace::read_trace(gs);
    std::ostringstream report;
    trace::print_diff(report, a, b, 3);
    FAIL() << "run diverged from tests/golden/e1.cztrace (fresh=A, "
              "golden=B):\n"
           << report.str();
  }
}

TEST(TraceGoldenTest, RepeatedRunsProduceIdenticalTraces) {
  trace::TraceSink a, b;
  (void)analysis::run_scenario(golden_scenario(), &a);
  (void)analysis::run_scenario(golden_scenario(), &b);
  EXPECT_EQ(serialize(a), serialize(b));
}

}  // namespace
}  // namespace czsync
