// Unit tests for src/util: time types, RNG, statistics, CSV, tables,
// logging.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/jobs.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time_domain.h"

namespace czsync {
namespace {

// ---------- time types ----------

TEST(DurTest, ConstructionAndConversions) {
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).sec(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::millis(250).sec(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::micros(500).sec(), 5e-4);
  EXPECT_DOUBLE_EQ(Duration::minutes(2).sec(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::hours(1).sec(), 3600.0);
  EXPECT_DOUBLE_EQ(Duration::seconds(0.5).ms(), 500.0);
}

TEST(DurTest, Arithmetic) {
  const Duration a = Duration::seconds(3), b = Duration::seconds(1);
  EXPECT_DOUBLE_EQ((a + b).sec(), 4.0);
  EXPECT_DOUBLE_EQ((a - b).sec(), 2.0);
  EXPECT_DOUBLE_EQ((-a).sec(), -3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).sec(), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a).sec(), 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0).sec(), 1.5);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  Duration c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.sec(), 4.0);
  c -= Duration::seconds(2);
  EXPECT_DOUBLE_EQ(c.sec(), 2.0);
}

TEST(DurTest, ComparisonAndAbs) {
  EXPECT_LT(Duration::seconds(1), Duration::seconds(2));
  EXPECT_GE(Duration::seconds(2), Duration::seconds(2));
  EXPECT_EQ(Duration::seconds(-3).abs(), Duration::seconds(3));
  EXPECT_EQ(Duration::seconds(3).abs(), Duration::seconds(3));
}

TEST(DurTest, Infinity) {
  EXPECT_FALSE(Duration::infinity().is_finite());
  EXPECT_TRUE(Duration::seconds(1e12).is_finite());
  EXPECT_GT(Duration::infinity(), Duration::seconds(1e300));
  EXPECT_LT(-Duration::infinity(), Duration::seconds(-1e300));
}

TEST(RealTimeTest, Arithmetic) {
  const SimTau t0(100.0);
  EXPECT_DOUBLE_EQ((t0 + Duration::seconds(5)).raw(), 105.0);
  EXPECT_DOUBLE_EQ((t0 - Duration::seconds(5)).raw(), 95.0);
  EXPECT_DOUBLE_EQ((SimTau(130.0) - t0).sec(), 30.0);
  EXPECT_LT(t0, SimTau(100.5));
}

TEST(ClockTimeTest, Arithmetic) {
  const LogicalTime c0(50.0);
  EXPECT_DOUBLE_EQ((c0 + Duration::seconds(2)).raw(), 52.0);
  EXPECT_DOUBLE_EQ((LogicalTime(55.0) - c0).sec(), 5.0);
}

TEST(TimeTypesTest, StreamOutput) {
  std::ostringstream os;
  os << Duration::seconds(2) << " " << SimTau(3.0) << " " << LogicalTime(4.0);
  EXPECT_EQ(os.str(), "2s tau=3 C=4");
}

// ---------- RNG ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RngTest, Uniform01Range) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01Mean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(RngTest, NormalScaled) {
  Rng rng(29);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(55);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkDeterministic) {
  Rng p1(55), p2(55);
  Rng a = p1.fork(9), b = p2.fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, ForkByName) {
  Rng parent(55);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  Rng a2 = parent.fork("alpha");
  EXPECT_EQ(a(), a2());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(SplitMixTest, KnownSequenceDistinct) {
  std::uint64_t s = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(s));
  EXPECT_EQ(seen.size(), 1000u);
}

// ---------- statistics ----------

TEST(RunningStatsTest, Empty) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(5.0, 3.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SeriesTest, Quantiles) {
  Series s;
  for (int i = 100; i >= 1; --i) s.add(i);  // unsorted insert
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SeriesTest, EmptyAndSingle) {
  Series s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(SeriesTest, AddAfterQuantileKeepsCorrectness) {
  Series s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);  // after a sort happened
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(25.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(9), 2u);
  EXPECT_EQ(h.count_at(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(HistogramTest, AsciiRendersEveryBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// ---------- CSV ----------

TEST(CsvTest, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row({"1", "2"});
  w.row_numeric({3.5, -4.25});
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.5,-4.25\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os, {"x"});
  w.row({"has,comma"});
  w.row({"has\"quote"});
  w.row({"plain"});
  EXPECT_EQ(os.str(), "x\n\"has,comma\"\n\"has\"\"quote\"\nplain\n");
}

TEST(CsvTest, FmtNum) {
  EXPECT_EQ(fmt_num(1.5), "1.5");
  EXPECT_EQ(fmt_num(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(fmt_num(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(fmt_num(std::nan("")), "nan");
  EXPECT_EQ(fmt_num(0.0), "0");
}

// ---------- tables ----------

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "v"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  const std::string s = t.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

// ---------- logging ----------

TEST(LoggingTest, LevelFiltering) {
  auto& lg = Logger::instance();
  const LogLevel old = lg.level();
  std::vector<std::string> captured;
  lg.set_sink([&](LogLevel, const std::string& m) { captured.push_back(m); });
  lg.set_level(LogLevel::Warn);
  CZ_INFO << "hidden";
  CZ_WARN << "shown " << 42;
  EXPECT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "shown 42");
  lg.set_level(old);
  lg.set_sink([](LogLevel, const std::string&) {});
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::Error), "ERROR");
}

// ---------- metrics ----------

TEST(MetricRegistryTest, CountersAddAndAccumulate) {
  util::MetricRegistry reg;
  reg.counter("a", 3);
  reg.add("a", 4);
  reg.add("b", 1);
  EXPECT_EQ(reg.value("a"), 7.0);
  EXPECT_EQ(reg.value("b"), 1.0);
  EXPECT_EQ(reg.value("missing"), 0.0);
  EXPECT_FALSE(reg.contains("missing"));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistryTest, GaugesOverwriteAndMaximize) {
  util::MetricRegistry reg;
  reg.gauge("g", 2.5);
  reg.gauge("g", 1.5);
  EXPECT_EQ(reg.value("g"), 1.5);
  reg.maximize("m", 3.0);
  reg.maximize("m", 1.0);
  reg.maximize("m", 5.0);
  EXPECT_EQ(reg.value("m"), 5.0);
}

TEST(MetricRegistryTest, ScopesPrefixAndNest) {
  util::MetricRegistry reg;
  auto sim = reg.scope("sim");
  sim.counter("events", 10);
  sim.scope("event_pool").counter("pushed", 4);
  EXPECT_EQ(reg.value("sim.events"), 10.0);
  EXPECT_EQ(reg.value("sim.event_pool.pushed"), 4.0);
}

TEST(MetricRegistryTest, EntriesAreNameSorted) {
  util::MetricRegistry reg;
  reg.counter("z", 1);
  reg.counter("a", 1);
  reg.counter("m", 1);
  std::vector<std::string> names;
  for (const auto& [name, entry] : reg.entries()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "m", "z"}));
}

TEST(MetricRegistryTest, MergeAddsCountersMaximizesGauges) {
  util::MetricRegistry a, b;
  a.counter("c", 2);
  a.gauge("g", 3.0);
  b.counter("c", 5);
  b.counter("only_b", 1);
  b.gauge("g", 2.0);
  a.merge_from(b);
  EXPECT_EQ(a.value("c"), 7.0);
  EXPECT_EQ(a.value("only_b"), 1.0);
  EXPECT_EQ(a.value("g"), 3.0);  // max, not sum
}

// ---------- json writer ----------

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("a \"b\"\n");
  w.key("n");
  w.value(std::uint64_t{42});
  w.key("xs");
  w.begin_array();
  w.value(1);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"a \\\"b\\\"\\n\""), std::string::npos);
  EXPECT_NE(s.find("\"n\": 42"), std::string::npos);
  EXPECT_NE(s.find("true"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeStrings) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"inf\""), std::string::npos);
  EXPECT_NE(s.find("\"-inf\""), std::string::npos);
  EXPECT_NE(s.find("\"nan\""), std::string::npos);
}

TEST(JsonWriterTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(util::JsonWriter::quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(util::JsonWriter::quote(std::string_view("\x01", 1)),
            "\"\\u0001\"");
}

// ---------- jobs parsing ----------

TEST(ParseJobsTest, AcceptsPositiveIntegers) {
  EXPECT_EQ(util::parse_jobs("1"), 1);
  EXPECT_EQ(util::parse_jobs("8"), 8);
  EXPECT_EQ(util::parse_jobs("123"), 123);
}

TEST(ParseJobsTest, RejectsGarbageZeroAndNegative) {
  std::string why;
  for (const char* bad : {"", "abc", "0", "-3", "+3", " 3", "3 ", "3x",
                          "1e2", "99999999999999999999"}) {
    why.clear();
    EXPECT_FALSE(util::parse_jobs(bad, &why).has_value()) << bad;
    EXPECT_FALSE(why.empty()) << bad;
  }
}

TEST(ParseJobsTest, EnvGarbageIsAnErrorNotAFallback) {
  ASSERT_EQ(setenv("CZSYNC_JOBS", "lots", 1), 0);
  std::string why;
  EXPECT_FALSE(util::jobs_from_env_or_default(&why).has_value());
  EXPECT_NE(why.find("CZSYNC_JOBS"), std::string::npos);

  ASSERT_EQ(setenv("CZSYNC_JOBS", "3", 1), 0);
  EXPECT_EQ(util::jobs_from_env_or_default(), 3);

  ASSERT_EQ(unsetenv("CZSYNC_JOBS"), 0);
  const auto def = util::jobs_from_env_or_default();
  ASSERT_TRUE(def.has_value());
  EXPECT_GE(*def, 1);
}

}  // namespace
}  // namespace czsync
