// Sharded-vs-single-queue equivalence (DESIGN.md §4.12).
//
// The sharded event pool replicates the heap + cached-min pair K ways
// and min-merges the shards' validated minima on every peek. The design
// claim is that sharding is pure pool bookkeeping: sequence numbers stay
// global and (t, seq) keys are unique, so the merged fire order — and
// with it trace bytes, protocol counters and clock trajectories — is
// bit-identical at EVERY shard count, including the unsharded (K = 1)
// legacy path. This test proves it dynamically, in the style of
// fanout_equivalence_test: run the same scenario at event_shards in
// {0 (off), 1, 2, 7} and compare the serialized czsync-trace-v1 stream
// plus the full metric registry against the unsharded baseline.
//
// The scenarios are chosen to cross shard boundaries in every way the
// pool can be exercised: batched fanout trains whose stamps deliver to
// receivers on other shards (a train lives on the SENDER's shard),
// unbatched per-message events (receiver's shard), adversary break-ins
// that cancel alarms and in-flight trains mid-run, and the round engine
// whose JOIN path reschedules aggressively.
//
// The only legitimate divergence is the pool's own bookkeeping
// (sim.event_pool.*): stale heap entries surface in a different
// interleaving when heaps are partitioned, so stale_skipped may differ;
// events_pending is exempt for the same reason as in the fanout test.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "adversary/schedule.h"
#include "analysis/experiment.h"
#include "analysis/scenario.h"
#include "net/link_faults.h"
#include "trace/format.h"
#include "trace/sink.h"
#include "util/rng.h"

namespace czsync {
namespace {

struct Captured {
  std::string trace;
  analysis::RunResult result;
};

Captured run(const analysis::Scenario& base, int shards) {
  analysis::Scenario s = base;
  s.event_shards = shards;
  trace::TraceSink sink;
  Captured c;
  c.result = analysis::run_scenario(s, &sink);
  std::ostringstream os(std::ios::binary);
  trace::write_trace(os, sink);
  c.trace = std::move(os).str();
  return c;
}

// Pool-internal keys that legitimately differ across shard layouts.
bool exempt(const std::string& key) {
  return key.rfind("sim.event_pool.", 0) == 0 || key == "sim.events_pending";
}

void expect_shard_invariant(const analysis::Scenario& base) {
  const Captured baseline = run(base, /*shards=*/0);
  ASSERT_FALSE(baseline.trace.empty());
  for (const int shards : {1, 2, 7}) {
    const Captured sharded = run(base, shards);
    EXPECT_EQ(baseline.trace, sharded.trace)
        << "trace bytes diverged at event_shards=" << shards;

    const auto& a = baseline.result.metrics.entries();
    const auto& b = sharded.result.metrics.entries();
    for (const auto& [key, entry] : a) {
      if (exempt(key)) continue;
      ASSERT_TRUE(b.contains(key))
          << "metric only in unsharded run: " << key;
      EXPECT_EQ(entry.value, b.at(key).value)
          << "metric diverged at event_shards=" << shards << ": " << key;
    }
    for (const auto& [key, entry] : b) {
      if (exempt(key)) continue;
      EXPECT_TRUE(a.contains(key))
          << "metric only at event_shards=" << shards << ": " << key;
    }
  }
}

analysis::Scenario base_scenario() {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::minutes(10);
  s.sample_period = Duration::seconds(15);
  s.seed = 31;
  return s;
}

// Batched fanout trains: every round is one train on the sender's shard
// whose deliveries land on all other shards. With 7 nodes and 7 shards
// every processor owns its own partition — the maximal-crossing case.
TEST(ShardDeterminism, FanoutTrainsCrossShards) {
  expect_shard_invariant(base_scenario());
}

// Unbatched per-message path: every delivery is its own pool event on
// the receiver's shard.
TEST(ShardDeterminism, UnbatchedSends) {
  analysis::Scenario s = base_scenario();
  s.batched_fanout = false;
  s.seed = 32;
  expect_shard_invariant(s);
}

// Adversary break-ins cancel sync/timeout alarms and in-flight trains
// mid-run: exercises cancel()'s per-shard cached-min invalidation and
// stale-entry skipping on partitioned heaps.
TEST(ShardDeterminism, AdversaryCancellations) {
  analysis::Scenario s = base_scenario();
  s.schedule = adversary::Schedule::random_mobile(
      s.model.n, s.model.f, s.model.delta_period, Duration::minutes(1),
      Duration::minutes(3), SimTau(0.75 * 600.0), Rng(2027));
  s.strategy = "clock-smash-random";
  s.strategy_scale = Duration::minutes(10);
  s.seed = 33;
  expect_shard_invariant(s);
}

// Round engine: round-tagged replies plus the JOIN path's rescheduling.
TEST(ShardDeterminism, RoundEngine) {
  analysis::Scenario s = base_scenario();
  s.protocol = "round";
  s.seed = 34;
  expect_shard_invariant(s);
}

// Sparse random topology at a node count that does not divide the shard
// counts evenly, with link faults dropping part of each fanout burst.
TEST(ShardDeterminism, SparseTopologyWithLinkFaults) {
  analysis::Scenario s = base_scenario();
  s.model.n = 12;
  s.topology = analysis::Scenario::TopologyKind::RandomRegular;
  s.topology_degree = 5;
  s.pings_per_peer = 2;
  s.link_faults = net::LinkFaultSet(
      {{0, 1, SimTau(0.0), SimTau(300.0)},
       {2, 3, SimTau(120.0), SimTau(480.0)}});
  s.seed = 35;
  expect_shard_invariant(s);
}

}  // namespace
}  // namespace czsync
