// Tests for link faults (§1.2 refinement probe): cut semantics,
// generators, network integration and protocol behaviour under cuts.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "net/link_faults.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace czsync::net {
namespace {

SimTau rt(double s) { return SimTau(s); }

TEST(LinkFaultSetTest, EmptyCutsNothing) {
  LinkFaultSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.cut_at(0, 1, rt(5.0)));
  EXPECT_EQ(s.max_cut_degree(), 0);
}

TEST(LinkFaultSetTest, CutWindowHalfOpen) {
  LinkFaultSet s({{0, 1, rt(10.0), rt(20.0)}});
  EXPECT_FALSE(s.cut_at(0, 1, rt(9.99)));
  EXPECT_TRUE(s.cut_at(0, 1, rt(10.0)));
  EXPECT_TRUE(s.cut_at(0, 1, rt(19.99)));
  EXPECT_FALSE(s.cut_at(0, 1, rt(20.0)));
}

TEST(LinkFaultSetTest, Undirected) {
  LinkFaultSet s({{3, 1, rt(0.0), rt(10.0)}});  // given in reverse order
  EXPECT_TRUE(s.cut_at(1, 3, rt(5.0)));
  EXPECT_TRUE(s.cut_at(3, 1, rt(5.0)));
  EXPECT_FALSE(s.cut_at(1, 2, rt(5.0)));
}

TEST(LinkFaultSetTest, MaxCutDegree) {
  LinkFaultSet s({{0, 1, rt(0.0), rt(10.0)},
                  {0, 2, rt(5.0), rt(15.0)},
                  {0, 3, rt(20.0), rt(30.0)}});
  // At t=5: links 0-1 and 0-2 are both cut -> degree 2 at vertex 0.
  EXPECT_EQ(s.max_cut_degree(), 2);
}

TEST(LinkFaultSetTest, IsolatePartially) {
  const auto s = LinkFaultSet::isolate_partially(2, {0, 1, 5}, rt(1.0), rt(9.0));
  EXPECT_EQ(s.faults().size(), 3u);
  EXPECT_TRUE(s.cut_at(2, 0, rt(5.0)));
  EXPECT_TRUE(s.cut_at(2, 5, rt(5.0)));
  EXPECT_FALSE(s.cut_at(2, 3, rt(5.0)));
  EXPECT_EQ(s.max_cut_degree(), 3);
}

TEST(LinkFaultSetTest, RandomFlappingBounds) {
  const auto s = LinkFaultSet::random_flapping(
      8, 3, Duration::seconds(10), Duration::seconds(60), Duration::seconds(30),
      rt(3600.0), Rng(5));
  EXPECT_FALSE(s.empty());
  for (const auto& f : s.faults()) {
    EXPECT_GE(f.a, 0);
    EXPECT_LT(f.b, 8);
    EXPECT_NE(f.a, f.b);
    EXPECT_LT(f.start, rt(3600.0));
    EXPECT_GE((f.end - f.start).sec(), 10.0);
    EXPECT_LE((f.end - f.start).sec(), 60.0 + 1e-9);
  }
}

TEST(LinkFaultNetworkTest, DropsOnlyDuringCut) {
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(3), make_fixed_delay(Duration::millis(10)),
              Rng(1));
  net.set_link_faults(LinkFaultSet({{0, 1, rt(1.0), rt(2.0)}}));
  int got = 0;
  net.register_handler(1, [&](const Message&) { ++got; });
  net.send(0, 1, PingReq{1});  // t=0: delivered
  sim.run_until(rt(1.5));
  net.send(0, 1, PingReq{2});  // t=1.5: cut
  net.send(2, 1, PingReq{3});  // other link unaffected
  sim.run_until(rt(3.0));
  net.send(0, 1, PingReq{4});  // cut over: delivered
  sim.run_until(rt(4.0));
  EXPECT_EQ(got, 3);
  EXPECT_EQ(net.stats().dropped_link_fault, 1u);
}

}  // namespace
}  // namespace czsync::net

namespace czsync::analysis {
namespace {

Scenario link_scenario(int cut_links) {
  Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(20);
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.seed = 7;
  s.record_series = true;
  std::vector<net::ProcId> peers;
  for (int q = 1; q <= cut_links; ++q) peers.push_back(q);
  s.link_faults = net::LinkFaultSet::isolate_partially(
      0, peers, SimTau(600.0), SimTau(3 * 3600.0));
  return s;
}

double victim_error_at_end(const RunResult& r) {
  const auto& last = r.series.back();
  std::vector<double> others(last.bias.begin() + 1, last.bias.end());
  std::sort(others.begin(), others.end());
  return std::abs(last.bias[0] - others[others.size() / 2]);
}

TEST(LinkFaultProtocolTest, ToleratesUpToFCutLinks) {
  for (int k : {1, 2}) {
    const auto r = run_scenario(link_scenario(k));
    EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation) << k;
    EXPECT_LT(victim_error_at_end(r), r.bounds.max_deviation.sec()) << k;
    EXPECT_GT(r.link_fault_drops, 0u);
  }
}

TEST(LinkFaultProtocolTest, FreeRunsWhenTooFewFiniteEstimates) {
  // k = 5 leaves only self + 1 peer finite: both order statistics are
  // infinite, the victim stops adjusting and drifts away at ~rho.
  const auto r = run_scenario(link_scenario(5));
  EXPECT_GT(victim_error_at_end(r), 0.25);  // >> gamma-scale error
}

TEST(LinkFaultProtocolTest, FlappingPlusProcessorFaultsWithinBound) {
  auto s = link_scenario(0);
  s.horizon = Duration::hours(6);
  s.link_faults = net::LinkFaultSet::random_flapping(
      7, 2, Duration::minutes(2), Duration::minutes(10), Duration::minutes(5),
      SimTau(6 * 3600.0), Rng(9));
  s.schedule = adversary::Schedule::random_mobile(
      7, 2, s.model.delta_period, Duration::minutes(5), Duration::minutes(20),
      SimTau(4.5 * 3600.0), Rng(10));
  s.strategy = "clock-smash-random";
  s.strategy_scale = Duration::minutes(2);
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
  EXPECT_TRUE(r.all_recovered());
}

}  // namespace
}  // namespace czsync::analysis
