// Unit tests for the adversary substrate: schedules (Definition 2),
// generators, the engine lifecycle and the Byzantine strategies.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/schedule.h"
#include "adversary/strategies.h"
#include "net/message.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace czsync::adversary {
namespace {

SimTau rt(double s) { return SimTau(s); }

// ---------- schedule semantics ----------

TEST(ScheduleTest, EmptySchedule) {
  Schedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.controlled_at(0, rt(1.0)));
  EXPECT_EQ(s.max_overlap(Duration::seconds(10)), 0);
  EXPECT_TRUE(s.is_f_limited(0, Duration::seconds(10)));
}

TEST(ScheduleTest, ControlledAtHalfOpenSemantics) {
  const auto s = Schedule::single(2, rt(10.0), rt(20.0));
  EXPECT_FALSE(s.controlled_at(2, rt(9.999)));
  EXPECT_TRUE(s.controlled_at(2, rt(10.0)));
  EXPECT_TRUE(s.controlled_at(2, rt(19.999)));
  EXPECT_FALSE(s.controlled_at(2, rt(20.0)));  // end is exclusive
  EXPECT_FALSE(s.controlled_at(1, rt(15.0)));
}

TEST(ScheduleTest, ControlledWithin) {
  const auto s = Schedule::single(0, rt(10.0), rt(20.0));
  EXPECT_TRUE(s.controlled_within(0, rt(5.0), rt(15.0)));
  EXPECT_TRUE(s.controlled_within(0, rt(15.0), rt(25.0)));
  EXPECT_TRUE(s.controlled_within(0, rt(0.0), rt(100.0)));
  EXPECT_FALSE(s.controlled_within(0, rt(0.0), rt(9.0)));
  EXPECT_FALSE(s.controlled_within(0, rt(20.0), rt(30.0)));  // end exclusive
  EXPECT_FALSE(s.controlled_within(1, rt(0.0), rt(100.0)));
}

TEST(ScheduleTest, MaxOverlapSimultaneous) {
  Schedule s({{0, rt(0.0), rt(10.0)}, {1, rt(5.0), rt(15.0)}});
  EXPECT_EQ(s.max_overlap(Duration::seconds(1)), 2);
  EXPECT_FALSE(s.is_f_limited(1, Duration::seconds(1)));
  EXPECT_TRUE(s.is_f_limited(2, Duration::seconds(1)));
}

TEST(ScheduleTest, MaxOverlapWindowStraddle) {
  // Two sequential intervals, 5s apart: a 10s window catches both, a 1s
  // window catches only one at a time.
  Schedule s({{0, rt(0.0), rt(10.0)}, {1, rt(15.0), rt(25.0)}});
  EXPECT_EQ(s.max_overlap(Duration::seconds(1)), 1);
  EXPECT_EQ(s.max_overlap(Duration::seconds(10)), 2);
  EXPECT_TRUE(s.is_f_limited(1, Duration::seconds(1)));
  EXPECT_FALSE(s.is_f_limited(1, Duration::seconds(10)));
}

TEST(ScheduleTest, SameProcessorTwiceCountsOnce) {
  Schedule s({{3, rt(0.0), rt(10.0)}, {3, rt(12.0), rt(20.0)}});
  EXPECT_EQ(s.max_overlap(Duration::seconds(100)), 1);
  EXPECT_TRUE(s.is_f_limited(1, Duration::seconds(100)));
}

TEST(ScheduleTest, Definition2GapRule) {
  // Def. 2 consequence: leaving p and breaking into q less than Delta
  // later puts both in one Delta-window.
  Schedule tight({{0, rt(0.0), rt(10.0)}, {1, rt(10.0 + 5.0), rt(30.0)}});
  EXPECT_FALSE(tight.is_f_limited(1, Duration::seconds(10)));  // gap 5 < Delta 10
  Schedule ok({{0, rt(0.0), rt(10.0)}, {1, rt(10.0 + 10.5), rt(30.0)}});
  EXPECT_TRUE(ok.is_f_limited(1, Duration::seconds(10)));  // gap 10.5 > Delta
}

TEST(ScheduleTest, ByEndTimeSorted) {
  Schedule s({{0, rt(0.0), rt(50.0)}, {1, rt(10.0), rt(20.0)}});
  const auto by_end = s.by_end_time();
  ASSERT_EQ(by_end.size(), 2u);
  EXPECT_EQ(by_end[0].proc, 1);
  EXPECT_EQ(by_end[1].proc, 0);
}

// ---------- generators ----------

TEST(ScheduleGenTest, RoundRobinIsFLimited) {
  const Duration delta = Duration::minutes(30);
  const auto s = Schedule::round_robin_sweep(7, 2, delta, Duration::minutes(10),
                                             Duration::minutes(1), rt(60.0),
                                             rt(24 * 3600.0));
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.is_f_limited(2, delta));
  EXPECT_FALSE(s.is_f_limited(1, delta));  // really uses its budget
}

TEST(ScheduleGenTest, RoundRobinCoversAllProcessors) {
  const auto s = Schedule::round_robin_sweep(5, 1, Duration::seconds(100),
                                             Duration::seconds(10), Duration::zero(),
                                             rt(0.0), rt(2000.0));
  std::vector<bool> hit(5, false);
  for (const auto& iv : s.intervals()) hit[static_cast<std::size_t>(iv.proc)] = true;
  for (int p = 0; p < 5; ++p) EXPECT_TRUE(hit[static_cast<std::size_t>(p)]) << p;
}

TEST(ScheduleGenTest, RandomMobileIsFLimited) {
  const Duration delta = Duration::minutes(20);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto s =
        Schedule::random_mobile(10, 3, delta, Duration::minutes(2), Duration::minutes(15),
                                rt(12 * 3600.0), Rng(seed));
    EXPECT_TRUE(s.is_f_limited(3, delta)) << "seed " << seed;
  }
}

TEST(ScheduleGenTest, RandomMobileRespectsHorizon) {
  const auto s = Schedule::random_mobile(5, 2, Duration::minutes(10), Duration::minutes(1),
                                         Duration::minutes(5), rt(3600.0), Rng(3));
  for (const auto& iv : s.intervals()) EXPECT_LT(iv.start, rt(3600.0));
}

// ---------- engine + strategies ----------

/// Minimal ControlledProcess double for engine tests.
class FakeProc final : public ControlledProcess {
 public:
  FakeProc(net::ProcId id, sim::Simulator& sim,
           std::shared_ptr<const clk::DriftModel> model)
      : id_(id), hw_(sim, std::move(model), Rng(id + 100)), clock_(hw_) {}

  net::ProcId id() const override { return id_; }
  clk::LogicalClock& clock() override { return clock_; }
  void send(net::ProcId to, net::Body body) override {
    sent.push_back({id_, to, std::move(body)});
  }
  std::span<const net::ProcId> peers() const override { return peers_; }
  void suspend_protocol() override { ++suspends; }
  void resume_protocol() override { ++resumes; }

  std::vector<net::Message> sent;
  int suspends = 0;
  int resumes = 0;

 private:
  net::ProcId id_;
  clk::HardwareClock hw_;
  clk::LogicalClock clock_;
  std::vector<net::ProcId> peers_{};
};

class EngineTest : public ::testing::Test {
 protected:
  void build(Schedule sched, std::shared_ptr<Strategy> strat) {
    for (int p = 0; p < 3; ++p)
      procs.push_back(std::make_unique<FakeProc>(p, sim, drift));
    WorldSpy spy;
    spy.n = 3;
    spy.f = 1;
    spy.way_off = Duration::seconds(1);
    spy.read_clock = [this](net::ProcId q) {
      return procs[static_cast<std::size_t>(q)]->clock().read();
    };
    adv = std::make_unique<Adversary>(sim, std::move(sched), std::move(strat),
                                      std::move(spy), Rng(5));
    std::vector<ControlledProcess*> raw;
    for (auto& p : procs) raw.push_back(p.get());
    adv->attach(std::move(raw));
  }

  sim::Simulator sim;
  std::shared_ptr<const clk::DriftModel> drift = clk::make_pinned_drift(1e-4, 1.0);
  std::vector<std::unique_ptr<FakeProc>> procs;
  std::unique_ptr<Adversary> adv;
};

TEST_F(EngineTest, LifecycleSuspendResume) {
  build(Schedule::single(1, rt(10.0), rt(20.0)), std::make_shared<SilentStrategy>());
  EXPECT_FALSE(adv->is_controlled(1));
  sim.run_until(rt(15.0));
  EXPECT_TRUE(adv->is_controlled(1));
  EXPECT_FALSE(adv->is_controlled(0));
  EXPECT_EQ(procs[1]->suspends, 1);
  EXPECT_EQ(procs[1]->resumes, 0);
  sim.run_until(rt(25.0));
  EXPECT_FALSE(adv->is_controlled(1));
  EXPECT_EQ(procs[1]->resumes, 1);
  EXPECT_EQ(adv->break_ins(), 1u);
}

TEST_F(EngineTest, OverlappingIntervalsSingleSuspend) {
  build(Schedule({{1, rt(10.0), rt(30.0)}, {1, rt(20.0), rt(40.0)}}),
        std::make_shared<SilentStrategy>());
  sim.run_until(rt(35.0));
  EXPECT_TRUE(adv->is_controlled(1));   // second interval still active
  EXPECT_EQ(procs[1]->suspends, 1);     // only one logical break-in
  sim.run_until(rt(45.0));
  EXPECT_FALSE(adv->is_controlled(1));
  EXPECT_EQ(procs[1]->resumes, 1);
}

TEST_F(EngineTest, SilentStrategyDropsMessages) {
  build(Schedule::single(0, rt(0.0), rt(100.0)), std::make_shared<SilentStrategy>());
  sim.run_until(rt(1.0));
  adv->deliver_to_strategy(*procs[0], net::Message{2, 0, net::PingReq{9}});
  EXPECT_TRUE(procs[0]->sent.empty());
}

TEST_F(EngineTest, ClockSmashSetsOffsetAndRepliesHonestly) {
  build(Schedule::single(0, rt(5.0), rt(50.0)),
        std::make_shared<ClockSmashStrategy>(Duration::seconds(30)));
  sim.run_until(rt(6.0));
  // Clock was +30s at break-in time 5.0.
  EXPECT_NEAR(procs[0]->clock().read().raw(), 6.0 + 30.0, 1e-6);
  adv->deliver_to_strategy(*procs[0], net::Message{1, 0, net::PingReq{7}});
  ASSERT_EQ(procs[0]->sent.size(), 1u);
  const auto& resp = std::get<net::PingResp>(procs[0]->sent[0].body);
  EXPECT_EQ(resp.nonce, 7u);
  EXPECT_NEAR(resp.responder_clock.raw(), 36.0, 1e-6);
  EXPECT_EQ(procs[0]->sent[0].to, 1);
}

TEST_F(EngineTest, ConstantLieOffsetsReplies) {
  build(Schedule::single(0, rt(0.0), rt(50.0)),
        std::make_shared<ConstantLieStrategy>(Duration::seconds(-5)));
  sim.run_until(rt(10.0));
  adv->deliver_to_strategy(*procs[0], net::Message{2, 0, net::PingReq{1}});
  const auto& resp = std::get<net::PingResp>(procs[0]->sent.at(0).body);
  EXPECT_NEAR(resp.responder_clock.raw(), 10.0 - 5.0, 1e-6);
}

TEST_F(EngineTest, TwoFacedLiesByParity) {
  build(Schedule::single(0, rt(0.0), rt(50.0)),
        std::make_shared<TwoFacedStrategy>(Duration::seconds(2)));
  sim.run_until(rt(10.0));
  adv->deliver_to_strategy(*procs[0], net::Message{2, 0, net::PingReq{1}});
  adv->deliver_to_strategy(*procs[0], net::Message{1, 0, net::PingReq{2}});
  const auto& to_even = std::get<net::PingResp>(procs[0]->sent.at(0).body);
  const auto& to_odd = std::get<net::PingResp>(procs[0]->sent.at(1).body);
  EXPECT_NEAR(to_even.responder_clock.raw(), 12.0, 1e-6);
  EXPECT_NEAR(to_odd.responder_clock.raw(), 8.0, 1e-6);
}

TEST_F(EngineTest, MaxPullReportsAboveHighestCorrectClock) {
  build(Schedule::single(0, rt(0.0), rt(50.0)),
        std::make_shared<MaxPullStrategy>(0.5));
  procs[1]->clock().adjust(Duration::seconds(3));  // highest correct clock
  sim.run_until(rt(10.0));
  adv->deliver_to_strategy(*procs[0], net::Message{1, 0, net::PingReq{1}});
  const auto& resp = std::get<net::PingResp>(procs[0]->sent.at(0).body);
  // target = max correct clock (13.0) + 0.5 * way_off (1s).
  EXPECT_NEAR(resp.responder_clock.raw(), 13.5, 1e-6);
}

TEST_F(EngineTest, RandomLieWithinSpread) {
  build(Schedule::single(0, rt(0.0), rt(50.0)),
        std::make_shared<RandomLieStrategy>(Duration::seconds(4)));
  sim.run_until(rt(10.0));
  for (int i = 0; i < 50; ++i) {
    adv->deliver_to_strategy(*procs[0],
                             net::Message{1, 0, net::PingReq{static_cast<std::uint64_t>(i)}});
  }
  for (const auto& m : procs[0]->sent) {
    const auto& resp = std::get<net::PingResp>(m.body);
    EXPECT_GE(resp.responder_clock.raw(), 6.0 - 1e-9);
    EXPECT_LE(resp.responder_clock.raw(), 14.0 + 1e-9);
  }
}

TEST_F(EngineTest, DelayedReplyHeldBack) {
  build(Schedule::single(0, rt(0.0), rt(50.0)),
        std::make_shared<DelayedReplyStrategy>(Duration::seconds(3), Duration::seconds(1)));
  sim.run_until(rt(10.0));
  adv->deliver_to_strategy(*procs[0], net::Message{1, 0, net::PingReq{1}});
  EXPECT_TRUE(procs[0]->sent.empty());  // not yet
  sim.run_until(rt(13.5));
  ASSERT_EQ(procs[0]->sent.size(), 1u);
  const auto& resp = std::get<net::PingResp>(procs[0]->sent[0].body);
  EXPECT_NEAR(resp.responder_clock.raw(), 13.0 + 1.0, 1e-6);
}

TEST_F(EngineTest, DelayedReplySuppressedAfterLeave) {
  build(Schedule::single(0, rt(0.0), rt(11.0)),
        std::make_shared<DelayedReplyStrategy>(Duration::seconds(3), Duration::seconds(1)));
  sim.run_until(rt(10.0));
  adv->deliver_to_strategy(*procs[0], net::Message{1, 0, net::PingReq{1}});
  sim.run_until(rt(20.0));  // reply would fire at 13, after leave at 11
  EXPECT_TRUE(procs[0]->sent.empty());
}

TEST(StrategyFactoryTest, AllNamesConstruct) {
  for (const char* name :
       {"silent", "clock-smash", "clock-smash-random", "constant-lie",
        "two-faced", "max-pull", "random-lie", "delayed-reply"}) {
    EXPECT_NE(make_strategy(name, Duration::seconds(1)), nullptr) << name;
  }
}

TEST(StrategyFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_strategy("nope", Duration::seconds(1)), std::invalid_argument);
}

}  // namespace
}  // namespace czsync::adversary
