#!/usr/bin/env python3
"""Self-test for tools/czsync_lint.py.

Drives the linter as a subprocess against the fixture corpus in
tests/lint_fixtures/: every rule class has one violating fixture that
must produce a finding with the right rule id and file:line, and one
clean fixture (including the justification-comment escape hatches) that
must pass. Also pins the exit-code contract: 0 clean, 1 findings,
2 usage error.

Run directly (python3 tests/lint_test.py) or via ctest -R lint_selftest.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "czsync_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")

_failures = []


def run_lint(*args):
    """Run the linter; returns (exit_code, combined_output)."""
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}" + (f" -- {detail}" if detail and not cond else ""))
    if not cond:
        _failures.append(name)


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def expect_findings(name, path, rule, lines):
    """Bad fixture: exit 1, and each expected line carries the rule id."""
    code, out = run_lint(path)
    check(f"{name}: exit 1", code == 1, f"exit={code}\n{out}")
    rel = os.path.relpath(path, REPO)
    for line_no in lines:
        pat = re.escape(rel) + rf":{line_no}: \[{re.escape(rule)}\]"
        check(
            f"{name}: finding [{rule}] at {rel}:{line_no}",
            re.search(pat, out) is not None,
            out,
        )


def expect_clean(name, path):
    code, out = run_lint(path)
    check(f"{name}: exit 0", code == 0, f"exit={code}\n{out}")


def main():
    print("== bad fixtures: each rule fires with file:line ==")
    expect_findings(
        "nondet-token",
        fixture("nondet_token_bad.cpp"),
        "nondet-token",
        [6, 8, 10, 11, 12],
    )
    expect_findings(
        "nondet-token syscall in core",
        fixture("src", "core", "rt_syscall_bad.cpp"),
        "nondet-token",
        [5, 6, 7],
    )
    expect_findings(
        "unordered-iter",
        fixture("unordered_iter_bad.cpp"),
        "unordered-iter",
        [7, 8],
    )
    expect_findings(
        "layering",
        fixture("src", "core", "layering_bad.h"),
        "layering",
        [4, 5],
    )
    expect_findings(
        "float-time-eq",
        fixture("src", "core", "float_eq_bad.cpp"),
        "float-time-eq",
        [7],
    )
    expect_findings(
        "header-hygiene",
        fixture("header_bad.h"),
        "header-hygiene",
        [1, 4],
    )
    expect_findings(
        "raw-double-time",
        fixture("src", "core", "raw_time_bad.cpp"),
        "raw-double-time",
        [6, 7, 10, 11],
    )
    expect_findings(
        "unsafe-cast-audit",
        fixture("src", "core", "unsafe_cast_bad.cpp"),
        "unsafe-cast-audit",
        [11, 15],
    )
    expect_findings(
        "stale-suppression",
        fixture("stale_suppression_bad.cpp"),
        "stale-suppression",
        [4, 5, 7, 11],
    )
    expect_findings(
        "layering-cmake",
        fixture("cmake_bad", "src", "sim", "CMakeLists.txt"),
        "layering-cmake",
        [5, 6, 7],
    )
    expect_findings(
        "py-style", fixture("py_style_bad.py"), "py-style", [7]
    )
    code, out = run_lint(fixture("py_syntax_bad.py"))
    check("py-compile: exit 1", code == 1, out)
    check("py-compile: rule id present", "[py-compile]" in out, out)

    print("== clean fixtures: escape hatches and sorted snapshots pass ==")
    expect_clean("nondet-token justified (// lint: wall-clock, ambient-env)",
                 fixture("nondet_token_ok.cpp"))
    expect_clean("syscalls inside src/rt (documented exception list)",
                 fixture("src", "rt", "rt_syscall_ok.cpp"))
    expect_clean("unordered-iter sorted snapshot + // lint: order-insensitive",
                 fixture("unordered_iter_ok.cpp"))
    expect_clean("layering within allowed layers",
                 fixture("src", "core", "layering_ok.h"))
    expect_clean("float compare with tolerance / // lint: exact-time",
                 fixture("src", "core", "float_eq_ok.cpp"))
    expect_clean("hygienic header", fixture("header_ok.h"))
    expect_clean("strong time types / justified raw boundary",
                 fixture("src", "core", "raw_time_ok.cpp"))
    expect_clean("raw f64 fields inside src/trace (serialization exempt)",
                 fixture("src", "trace", "raw_time_serial_ok.cpp"))
    expect_clean("justified .raw()/_unsafe call sites",
                 fixture("src", "core", "unsafe_cast_ok.cpp"))
    expect_clean("consumed hatches are not stale",
                 fixture("stale_suppression_ok.cpp"))
    expect_clean("link line mirroring the DAG (incl. czsync_tracing)",
                 fixture("cmake_ok", "src", "core", "CMakeLists.txt"))
    expect_clean("clean python", fixture("py_ok.py"))

    print("== exit-code contract ==")
    code, out = run_lint("--no-such-flag")
    check("unknown flag: exit 2", code == 2, f"exit={code}\n{out}")
    code, out = run_lint(os.path.join(REPO, "no", "such", "file.cpp"))
    check("nonexistent path: exit 2", code == 2, f"exit={code}\n{out}")

    print("== whole tree is lint-clean ==")
    code, out = run_lint("--root", REPO, "--py")
    check("tree run: exit 0", code == 0, f"exit={code}\n{out}")
    check("tree run: reports clean", "clean" in out, out)
    code, out = run_lint("--cmake-only", "--root", REPO)
    check("cmake-only run: exit 0", code == 0, f"exit={code}\n{out}")
    check("cmake-only run: scans CMake files", "CMake file(s)" in out, out)

    if _failures:
        print(f"\nlint_test: {len(_failures)} check(s) FAILED")
        return 1
    print("\nlint_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
