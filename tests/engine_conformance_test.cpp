// Engine-conformance suite: every ProtocolEngine ("sync", "round",
// "st-broadcast"), with and without rate discipline, must satisfy the
// same black-box contract on the same workloads:
//   * fault-free runs keep stable clocks synchronized (at worst within
//     the Theorem-5 gamma of the canonical configuration);
//   * a smash-and-leave victim is back inside the pack within Delta;
//   * suspend/resume (break-in lifecycle) never wedges the engine —
//     rounds keep completing afterwards;
//   * determinism: identical scenario+seed => identical metrics.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "adversary/schedule.h"
#include "analysis/experiment.h"

namespace czsync::analysis {
namespace {

struct EngineParam {
  const char* protocol;
  bool discipline;
};

class EngineConformance : public ::testing::TestWithParam<EngineParam> {
 protected:
  Scenario base(std::uint64_t seed) const {
    Scenario s;
    s.model.n = 7;
    s.model.f = 2;
    s.model.rho = 1e-4;
    s.model.delta = Duration::millis(50);
    s.model.delta_period = Duration::hours(1);
    s.sync_int = Duration::minutes(1);
    s.protocol = GetParam().protocol;
    s.rate_discipline = GetParam().discipline;
    s.initial_spread = Duration::millis(100);
    s.horizon = Duration::hours(4);
    s.warmup = Duration::minutes(30);
    s.seed = seed;
    return s;
  }
};

TEST_P(EngineConformance, FaultFreeSynchronizes) {
  const auto r = run_scenario(base(31));
  EXPECT_GT(r.rounds_completed, 100u);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST_P(EngineConformance, RecoversFromSmashWithinDelta) {
  auto s = base(32);
  s.warmup = Duration::zero();
  s.horizon = Duration::hours(3);
  s.sample_period = Duration::seconds(10);
  s.schedule = adversary::Schedule::single(2, SimTau(3600.0), SimTau(3900.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(10);
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.all_recovered());
  EXPECT_LT(r.max_recovery_time(), s.model.delta_period);
}

TEST_P(EngineConformance, SurvivesRepeatedBreakInLifecycles) {
  auto s = base(33);
  s.horizon = Duration::hours(8);
  s.schedule = adversary::Schedule::round_robin_sweep(
      7, 2, s.model.delta_period, Duration::minutes(10), Duration::minutes(1),
      SimTau(600.0), SimTau(7.0 * 3600.0));
  s.strategy = "silent";
  const auto r = run_scenario(s);
  EXPECT_GT(r.break_ins, 5u);
  EXPECT_TRUE(r.all_recovered());
  // The engines kept running after every resume: round counts dwarf the
  // break-in count.
  EXPECT_GT(r.rounds_completed, r.break_ins * 20);
}

TEST_P(EngineConformance, DeterministicGivenSeed) {
  const auto a = run_scenario(base(34));
  const auto b = run_scenario(base(34));
  EXPECT_EQ(a.max_stable_deviation.sec(), b.max_stable_deviation.sec());
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineConformance,
    ::testing::Values(EngineParam{"sync", false}, EngineParam{"sync", true},
                      EngineParam{"round", false},
                      EngineParam{"st-broadcast", false}),
    [](const auto& info) {
      std::string name = info.param.protocol;
      for (auto& c : name)
        if (c == '-') c = '_';
      if (info.param.discipline) name += "_disciplined";
      return name;
    });

}  // namespace
}  // namespace czsync::analysis
