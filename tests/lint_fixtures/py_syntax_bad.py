"""Fixture: does not byte-compile."""

def broken(:
    pass
