"""Fixture: style findings (still byte-compiles)."""


def risky():
    try:
        return 1
    except:
        return 0
