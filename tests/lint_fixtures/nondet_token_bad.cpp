// Fixture: every banned nondeterminism token, no justification.
#include <chrono>
#include <cstdlib>

double wall() {
  auto t = std::chrono::steady_clock::now();
  (void)t;
  auto w = std::chrono::system_clock::now();
  (void)w;
  std::random_device rd;
  (void)std::rand();
  const char* home = std::getenv("HOME");
  (void)home;
  return 0.0;
}
