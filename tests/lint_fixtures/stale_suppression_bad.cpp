// Fixture: stale-suppression -- hatches whose line (and the line below)
// no longer triggers the suppressed rule must be reported.
inline int stale() {
  int x = 1;  // lint: order-insensitive
  // lint: wall-clock
  int y = 2;
  // NOLINT(readability-magic-numbers)
  int z = 3;
  return x + y + z;
}
// NOLINTNEXTLINE(bugprone-branch-clone)
