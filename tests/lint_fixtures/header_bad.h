// Fixture: no include guard, namespace leak.
#include <vector>

using namespace std;

inline int three() { return 3; }
