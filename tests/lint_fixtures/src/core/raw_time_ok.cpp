// Fixture: strong time types and justified raw boundaries pass
// raw-double-time.
#include "util/time_domain.h"

namespace czsync::core {

struct Plan {
  SimTau fire_at;
  Duration retry_delay;
};

inline Duration helper(SimTau now) {
  // time: CSV export writes the raw tau column for plotting scripts
  double tau_csv = now.raw();
  return Duration(tau_csv) - Duration::zero();
}

}  // namespace czsync::core
