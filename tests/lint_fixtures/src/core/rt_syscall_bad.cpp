// Fixture: kernel event/socket syscalls inside src/core must fail the
// nondet-token rule -- only src/rt/ (the real-sockets runtime) is on the
// documented exception list. A syscall here would break replay.
int bad_core_syscalls(int fd, void* ev, void* buf, int len) {
  int n = epoll_wait(fd, ev, 16, -1);
  int tfd = timerfd_create(1, 0);
  long got = recvfrom(fd, buf, len, 0, nullptr, nullptr);
  return n + tfd + static_cast<int>(got);
}
