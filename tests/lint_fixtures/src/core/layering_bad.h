// Fixture: core/ reaching up into sim/ and analysis/.
#pragma once

#include "analysis/world.h"
#include "sim/simulator.h"
