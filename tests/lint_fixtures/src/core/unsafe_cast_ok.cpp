// Fixture: justified time-domain escapes pass unsafe-cast-audit.
struct Tau {
  // time: fixture stand-in for the strong point types
  double raw() const;
  static Tau from_tau_unsafe(Tau t);  // time: fixture decl, not a call
};

inline double ok_read(Tau t) {
  // time: wire format serializes the bit-exact f64
  return t.raw();
}

inline Tau ok_cast(Tau t) {
  return Tau::from_tau_unsafe(t);  // time: clock model evaluates H(tau)
}
