// Fixture: core/ sticking to its allowed lower layers.
#pragma once

#include "clock/logical_clock.h"
#include "net/network.h"
#include "trace/port.h"
#include "util/rng.h"
