// Fixture: tolerance compare, and a justified exact compare.
#include <cmath>

struct Dur {
  double v;
  double sec() const { return v; }
};

bool close(Dur a, Dur b) { return std::abs(a.sec() - b.sec()) < 1e-9; }
bool zero(Dur a) {
  return a.sec() == 0.0;  // lint: exact-time
}
