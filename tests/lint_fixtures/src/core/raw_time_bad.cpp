// Fixture: raw-double-time must fire on every floating declaration whose
// name says it holds a time value (*tau*, *now*, *deadline*, *delay*).
namespace czsync::core {

struct Plan {
  double fire_tau = 0.0;
  float retry_delay_s = 0.0f;
};

inline double helper(double now_sec) {
  double deadline = now_sec + 1.0;
  double known = 2.0;  // embedded 'now' is not a word segment: clean
  return deadline + known;
}

}  // namespace czsync::core
