// Fixture: unsafe-cast-audit fires on every time-domain escape --
// .raw() reads and _unsafe casts -- lacking a `// time: <why>`
// justification on the line or the line above.
struct Tau {
  // time: fixture stand-in for the strong point types
  double raw() const;
  static Tau from_tau_unsafe(Tau t);  // time: fixture decl, not a call
};

inline double bad_read(Tau t) {
  return t.raw();
}

inline Tau bad_cast(Tau t) {
  return Tau::from_tau_unsafe(t);
}
