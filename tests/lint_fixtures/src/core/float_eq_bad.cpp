// Fixture: exact equality on time-typed expressions.
struct Dur {
  double v;
  double sec() const { return v; }
};

bool same(Dur a, Dur b) { return a.sec() == b.sec(); }
