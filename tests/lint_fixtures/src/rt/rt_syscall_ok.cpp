// Fixture: the same kernel syscalls are allowed inside src/rt -- the
// documented real-sockets exception (SYSCALL_EXEMPT_DIRS). Wall-clock
// reads are NOT blanket-exempted and still need a justification line.
int ok_rt_syscalls(int fd, void* ev, void* buf, int len, void* ts) {
  int n = epoll_wait(fd, ev, 16, -1);
  int tfd = timerfd_create(1, 0);
  long got = recvfrom(fd, buf, len, 0, nullptr, nullptr);
  int rc = clock_gettime(1, ts);  // lint: wall-clock (rt::Clock fixture)
  return n + tfd + rc + static_cast<int>(got);
}
