// Fixture: src/trace is the serialization layer -- czsync-trace-v1
// fields are raw f64 by format contract, so raw-double-time is exempt
// here even without per-line justifications.
namespace czsync::trace {

struct WireStamp {
  double t_tau = 0.0;
  double deadline = 0.0;
};

inline double pack_delay(double delay_sec) { return delay_sec; }

}  // namespace czsync::trace
