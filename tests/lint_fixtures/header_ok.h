// Fixture: hygienic header.
#pragma once

#include <vector>

inline int three() { return 3; }
