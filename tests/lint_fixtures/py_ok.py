"""Fixture: clean python."""


def fine():
    return 1
