// Fixture: bucket-order iteration over an unordered container.
#include <unordered_map>

int sum() {
  std::unordered_map<int, int> cache;
  int s = 0;
  for (const auto& [k, v] : cache) s += v;
  for (auto it = cache.begin(); it != cache.end(); ++it) s += it->second;
  return s;
}
