// Fixture: the same reads, each with its documented justification.
#include <chrono>
#include <cstdlib>

double wall() {
  auto t = std::chrono::steady_clock::now();  // lint: wall-clock
  const char* knob = std::getenv("FIXTURE_KNOB");  // lint: ambient-env
  (void)knob;
  (void)t;
  return 0.0;
}
