// Fixture: sorted snapshot, plus the escape hatch for a commutative walk.
#include <algorithm>
#include <unordered_map>
#include <vector>

int sum() {
  std::unordered_map<int, int> cache;
  std::vector<std::pair<int, int>> snapshot(cache.begin(), cache.end());
  std::sort(snapshot.begin(), snapshot.end());
  int s = 0;
  for (const auto& [k, v] : snapshot) s += v;
  // Pure commutative accumulation; order cannot reach any output.
  for (const auto& [k, v] : cache) s += v;  // lint: order-insensitive
  return s;
}
