// Fixture: hatches that suppress a live finding are consumed, not stale.
#include <chrono>
#include <unordered_set>

inline long long wall_metric() {
  // lint: wall-clock
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

inline int total() {
  std::unordered_set<int> bag = {1, 2, 3};
  int sum = 0;
  // lint: order-insensitive
  for (int v : bag) sum += v;
  return sum;
}
