# Driver for the `ubsan_suite` ctest entry: configure + build an
# UndefinedBehaviorSanitizer copy of the library and the hot-path test
# binaries in a nested build directory, then run them. The build uses
# -fno-sanitize-recover=undefined, so any UB report (signed overflow in
# the varint shifts, misaligned pool-slot access, bad enum load from a
# deserialized trace record) aborts the binary and fails the entry.
#
# Expects -DSOURCE_DIR=... and -DBUILD_DIR=... on the cmake -P line.
if(NOT DEFINED SOURCE_DIR OR NOT DEFINED BUILD_DIR)
  message(FATAL_ERROR "run_ubsan_suite.cmake needs SOURCE_DIR and BUILD_DIR")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DCZSYNC_SANITIZE=undefined
          -DCZSYNC_BUILD_BENCH=OFF
          -DCZSYNC_BUILD_EXAMPLES=OFF
  RESULT_VARIABLE cfg_result)
if(NOT cfg_result EQUAL 0)
  message(FATAL_ERROR "UBSan sub-build configure failed (${cfg_result})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --parallel
          --target sim_test net_test event_pool_test trace_test
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "UBSan sub-build compile failed (${build_result})")
endif()

foreach(bin sim_test net_test event_pool_test trace_test)
  execute_process(
    COMMAND ${BUILD_DIR}/tests/${bin}
    RESULT_VARIABLE run_result)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR
            "${bin} failed under UndefinedBehaviorSanitizer (${run_result})")
  endif()
endforeach()
