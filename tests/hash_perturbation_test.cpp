// Hash-geometry perturbation regression (DESIGN.md §4.9, satellite of
// the determinism lint).
//
// The protocol layer keeps unordered_map/set members (nonce routing,
// reply collection, the §3.1 estimate cache). The lint's static claim is
// that no bucket-order iteration reaches messages, adjustments or
// traces; this test proves it dynamically: pre-reserving the tables via
// SyncConfig::debug_bucket_reserve forces a completely different bucket
// geometry (and so a different iteration order, were anything iterating),
// and the full serialized trace of the run must still be byte-identical.
//
// Also covers adversary::CapturingStrategy after its move out of
// proactive/ — the decorator must delegate faithfully and record one
// capture per break-in.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/capture.h"
#include "adversary/schedule.h"
#include "adversary/strategies.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/round_protocol.h"
#include "core/sync_protocol.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "proactive/audit.h"
#include "proactive/secret_sharing.h"
#include "sim/simulator.h"
#include "trace/format.h"
#include "trace/sink.h"
#include "util/rng.h"

namespace czsync {
namespace {

std::string serialize(const trace::TraceSink& sink) {
  std::ostringstream os(std::ios::binary);
  trace::write_trace(os, sink);
  return std::move(os).str();
}

core::SyncConfig base_config(int f, std::size_t reserve) {
  core::SyncConfig cfg;
  cfg.params.sync_int = Duration::seconds(60);
  cfg.params.max_wait = Duration::millis(30);
  cfg.params.way_off = Duration::seconds(1);
  cfg.f = f;
  cfg.convergence = core::make_convergence("bhhn");
  cfg.random_phase = false;
  cfg.debug_bucket_reserve = reserve;
  return cfg;
}

// Runs n cached-estimation SyncProcesses (all three unordered tables in
// play: nonce->peer, nonce->send-time, peer->estimate cache) under a
// stochastic delay model and returns the serialized trace bytes.
std::string run_cached_sync(std::size_t reserve) {
  sim::Simulator sim;
  trace::TraceSink sink;
  sim.set_trace_sink(&sink);
  const int n = 5;
  net::Network net(sim, net::Topology::full_mesh(n),
                   net::make_uniform_delay(Duration::millis(40), Duration::millis(5)),
                   Rng(7));
  core::SyncConfig cfg = base_config(/*f=*/1, reserve);
  cfg.cached_estimation = true;
  cfg.cache_refresh = Duration::seconds(20);
  cfg.max_cache_age = Duration::minutes(2);

  struct Node {
    Node(sim::Simulator& sim, net::Network& net, net::ProcId id,
         const core::SyncConfig& cfg, Duration bias)
        : hw(sim, clk::make_pinned_drift(1e-5, 1.0), Rng(100 + id),
             HwTime(sim.now().raw()) + bias),
          clock(hw),
          sync(sim.trace_port(), net, clock, id, cfg, Rng(200 + id)) {
      net.register_handler(id, [this](const net::Message& m) {
        sync.handle_message(m);
      });
    }
    clk::HardwareClock hw;
    clk::LogicalClock clock;
    core::SyncProcess sync;
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (int p = 0; p < n; ++p) {
    nodes.push_back(std::make_unique<Node>(sim, net, p, cfg,
                                           Duration::millis(37 * (p + 1))));
  }
  for (auto& nd : nodes) nd->sync.start();
  sim.run_until(SimTau(300.0));
  return serialize(sink);
}

// Same shape for the round-based comparator (nonce_to_peer_ and
// collected_ are its unordered tables).
std::string run_round_sync(std::size_t reserve) {
  sim::Simulator sim;
  trace::TraceSink sink;
  sim.set_trace_sink(&sink);
  const int n = 5;
  net::Network net(sim, net::Topology::full_mesh(n),
                   net::make_uniform_delay(Duration::millis(40), Duration::millis(5)),
                   Rng(11));
  const core::SyncConfig cfg = base_config(/*f=*/1, reserve);

  struct Node {
    Node(sim::Simulator& sim, net::Network& net, net::ProcId id,
         const core::SyncConfig& cfg, Duration bias)
        : hw(sim, clk::make_pinned_drift(1e-5, 1.0), Rng(100 + id),
             HwTime(sim.now().raw()) + bias),
          clock(hw),
          proto(sim.trace_port(), net, clock, id, cfg, Rng(200 + id)) {
      net.register_handler(id, [this](const net::Message& m) {
        proto.handle_message(m);
      });
    }
    clk::HardwareClock hw;
    clk::LogicalClock clock;
    core::RoundSyncProcess proto;
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (int p = 0; p < n; ++p) {
    nodes.push_back(std::make_unique<Node>(sim, net, p, cfg,
                                           Duration::millis(53 * (p + 1))));
  }
  for (auto& nd : nodes) nd->proto.start();
  sim.run_until(SimTau(300.0));
  return serialize(sink);
}

TEST(HashPerturbationTest, CachedSyncTraceUnchangedByBucketGeometry) {
  const std::string baseline = run_cached_sync(0);
  ASSERT_FALSE(baseline.empty());
  // 4096 pre-reserved buckets vs the libstdc++ default growth sequence:
  // every modulo-bucket assignment differs, so any bucket-order walk
  // reaching the trace would flip bytes here.
  EXPECT_EQ(baseline, run_cached_sync(4096));
  // A second, prime-sized geometry for good measure.
  EXPECT_EQ(baseline, run_cached_sync(1009));
}

TEST(HashPerturbationTest, RoundSyncTraceUnchangedByBucketGeometry) {
  const std::string baseline = run_round_sync(0);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, run_round_sync(4096));
  EXPECT_EQ(baseline, run_round_sync(1009));
}

// ---------- adversary::CapturingStrategy ----------

class FakeProc final : public adversary::ControlledProcess {
 public:
  FakeProc(net::ProcId id, sim::Simulator& sim,
           std::shared_ptr<const clk::DriftModel> model)
      : id_(id), hw_(sim, std::move(model), Rng(id + 100)), clock_(hw_) {}

  [[nodiscard]] net::ProcId id() const override { return id_; }
  clk::LogicalClock& clock() override { return clock_; }
  void send(net::ProcId, net::Body) override {}
  [[nodiscard]] std::span<const net::ProcId> peers() const override {
    return peers_;
  }
  void suspend_protocol() override { ++suspends; }
  void resume_protocol() override { ++resumes; }

  int suspends = 0;
  int resumes = 0;

 private:
  net::ProcId id_;
  clk::HardwareClock hw_;
  clk::LogicalClock clock_;
  std::vector<net::ProcId> peers_{};
};

TEST(CapturingStrategyTest, RecordsOneCapturePerBreakInAndDelegates) {
  sim::Simulator sim;
  proactive::ShareStore store(3, 0xfeedULL);
  proactive::Auditor auditor(store);

  auto inner = std::make_shared<adversary::SilentStrategy>();
  auto capturing =
      std::make_shared<adversary::CapturingStrategy>(inner, auditor);
  EXPECT_EQ(capturing->name(), inner->name());  // pure decorator

  auto drift = clk::make_pinned_drift(1e-4, 1.0);
  std::vector<std::unique_ptr<FakeProc>> procs;
  for (int p = 0; p < 3; ++p)
    procs.push_back(std::make_unique<FakeProc>(p, sim, drift));
  adversary::WorldSpy spy;
  spy.n = 3;
  spy.f = 1;
  spy.way_off = Duration::seconds(1);
  spy.read_clock = [&procs](net::ProcId q) {
    return procs[static_cast<std::size_t>(q)]->clock().read();
  };
  adversary::Adversary adv(
      sim,
      adversary::Schedule({{1, SimTau(10.0), SimTau(20.0)},
                           {2, SimTau(30.0), SimTau(40.0)}}),
      capturing, std::move(spy), Rng(5));
  std::vector<adversary::ControlledProcess*> raw;
  for (auto& p : procs) raw.push_back(p.get());
  adv.attach(std::move(raw));

  sim.run_until(SimTau(50.0));
  // One capture per break-in, attributed to the right victims.
  EXPECT_EQ(auditor.captures(), 2u);
  EXPECT_EQ(auditor.worst_epoch_exposure(), 2);
  // Engine lifecycle still reached the processors through the decorator.
  EXPECT_EQ(procs[1]->suspends, 1);
  EXPECT_EQ(procs[1]->resumes, 1);
  EXPECT_EQ(procs[2]->suspends, 1);
  EXPECT_EQ(procs[2]->resumes, 1);
}

}  // namespace
}  // namespace czsync
