// Unit tests for the network substrate: topologies (including the
// Section-5 two-cliques construction and vertex connectivity), delay
// models, and the delivery contract of §2.2.
#include <gtest/gtest.h>

#include <map>

#include "net/delay_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace czsync::net {
namespace {

// ---------- topology ----------

TEST(TopologyTest, FullMeshProperties) {
  const auto t = Topology::full_mesh(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.edge_count(), 10u);
  EXPECT_EQ(t.min_degree(), 4);
  EXPECT_TRUE(t.is_connected());
  for (int a = 0; a < 5; ++a) {
    EXPECT_FALSE(t.has_edge(a, a));
    for (int b = 0; b < 5; ++b) {
      if (a != b) {
        EXPECT_TRUE(t.has_edge(a, b));
      }
    }
  }
}

TEST(TopologyTest, FullMeshConnectivityIsNMinus1) {
  EXPECT_EQ(Topology::full_mesh(4).vertex_connectivity(), 3);
  EXPECT_EQ(Topology::full_mesh(7).vertex_connectivity(), 6);
}

TEST(TopologyTest, RingProperties) {
  const auto t = Topology::ring(6);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.edge_count(), 6u);
  EXPECT_EQ(t.min_degree(), 2);
  EXPECT_TRUE(t.is_connected());
  EXPECT_TRUE(t.has_edge(0, 5));
  EXPECT_FALSE(t.has_edge(0, 3));
  EXPECT_EQ(t.vertex_connectivity(), 2);
}

TEST(TopologyTest, NeighborsSortedAndReflexive) {
  const auto t = Topology::ring(5);
  const auto& nb = t.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1);
  EXPECT_EQ(nb[1], 4);
  for (ProcId q : nb) EXPECT_TRUE(t.has_edge(q, 0));
}

TEST(TopologyTest, FromEdgesDeduplicates) {
  const auto t = Topology::from_edges(3, {{0, 1}, {1, 0}, {1, 2}});
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_EQ(t.degree(1), 2);
}

TEST(TopologyTest, DisconnectedGraph) {
  const auto t = Topology::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(t.is_connected());
  EXPECT_EQ(t.vertex_connectivity(), 0);
}

TEST(TopologyTest, PathGraphConnectivityOne) {
  const auto t = Topology::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.vertex_connectivity(), 1);
}

// The Section 5 claim: two (3f+1)-cliques plus a perfect matching form a
// (3f+1)-connected graph (on which the protocol nonetheless fails).
TEST(TopologyTest, TwoCliquesF1) {
  const auto t = Topology::two_cliques(1);
  EXPECT_EQ(t.size(), 8);  // 6f+2
  // Each vertex: 3f clique neighbors + 1 matching neighbor.
  EXPECT_EQ(t.min_degree(), 4);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.vertex_connectivity(), 4);  // 3f+1
  // Matching edges.
  EXPECT_TRUE(t.has_edge(0, 4));
  EXPECT_TRUE(t.has_edge(3, 7));
  // No other cross edges.
  EXPECT_FALSE(t.has_edge(0, 5));
}

TEST(TopologyTest, TwoCliquesF2) {
  const auto t = Topology::two_cliques(2);
  EXPECT_EQ(t.size(), 14);
  EXPECT_EQ(t.min_degree(), 7);         // 3f + 1
  EXPECT_EQ(t.vertex_connectivity(), 7);  // 3f+1 = 7
}

TEST(TopologyTest, TwoCliquesEdgeCount) {
  // 2 * C(3f+1, 2) + (3f+1) edges.
  const auto t = Topology::two_cliques(1);
  EXPECT_EQ(t.edge_count(), 2u * 6u + 4u);
}

// ---------- delay models ----------

TEST(DelayModelTest, FixedDelayIsConstant) {
  FixedDelay m(Duration::millis(50), 0.4);
  Rng rng(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(m.sample(rng, 0, 1).sec(), 0.02);
}

TEST(DelayModelTest, UniformDelayWithinBounds) {
  UniformDelay m(Duration::millis(50), Duration::millis(5));
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const Duration d = m.sample(rng, 0, 1);
    EXPECT_GE(d, Duration::millis(5));
    EXPECT_LE(d, Duration::millis(50));
  }
}

TEST(DelayModelTest, AsymmetricDirectionality) {
  AsymmetricDelay m(Duration::millis(100), 0.1, 0.9, 0.05);
  Rng rng(3);
  RunningStats fwd, back;
  for (int i = 0; i < 1000; ++i) {
    fwd.add(m.sample(rng, 0, 1).sec());
    back.add(m.sample(rng, 1, 0).sec());
  }
  EXPECT_GT(fwd.mean(), 0.08);
  EXPECT_LT(back.mean(), 0.02);
}

TEST(DelayModelTest, JitterDelayBounded) {
  JitterDelay m(Duration::millis(50), Duration::millis(10), Duration::millis(15));
  Rng rng(4);
  RunningStats st;
  for (int i = 0; i < 5000; ++i) {
    const Duration d = m.sample(rng, 0, 1);
    EXPECT_GE(d, Duration::millis(10));
    EXPECT_LE(d, Duration::millis(50));
    st.add(d.sec());
  }
  // Tail must actually hit the clamp occasionally.
  EXPECT_GT(st.max(), 0.045);
}

TEST(DelayModelTest, FactoriesRespectBound) {
  Rng rng(5);
  for (auto& m :
       {make_fixed_delay(Duration::millis(20)), make_uniform_delay(Duration::millis(20)),
        make_asymmetric_delay(Duration::millis(20)),
        make_jitter_delay(Duration::millis(20), Duration::millis(2), Duration::millis(5))}) {
    EXPECT_DOUBLE_EQ(m->bound().sec(), 0.02);
    for (int i = 0; i < 200; ++i) {
      const Duration d = m->sample(rng, 0, 1);
      EXPECT_GT(d, Duration::zero());
      EXPECT_LE(d, m->bound());
    }
  }
}

// ---------- network ----------

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Network net{sim, Topology::full_mesh(3), make_fixed_delay(Duration::millis(10)),
              Rng(1)};
};

TEST_F(NetworkTest, DeliversWithinBound) {
  std::vector<Message> got;
  net.register_handler(1, [&](const Message& m) { got.push_back(m); });
  net.send(0, 1, PingReq{42});
  sim.run_until(SimTau(1.0));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, 0);
  EXPECT_EQ(got[0].to, 1);
  EXPECT_EQ(std::get<PingReq>(got[0].body).nonce, 42u);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST_F(NetworkTest, DeliveryTimeMatchesDelayModel) {
  double delivered_at = -1.0;
  net.register_handler(2, [&](const Message&) { delivered_at = sim.now().raw(); });
  net.send(0, 2, PingReq{1});
  sim.run_until(SimTau(1.0));
  EXPECT_NEAR(delivered_at, 0.005, 1e-12);  // fixed model: bound * 0.5
}

TEST_F(NetworkTest, AuthenticatedSender) {
  // The network stamps the true sender; there is no API to forge it.
  Message got;
  net.register_handler(2, [&](const Message& m) { got = m; });
  net.send(1, 2, PingResp{7, LogicalTime(3.0)});
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(got.from, 1);
}

TEST_F(NetworkTest, NoHandlerCountsDrop) {
  net.send(0, 1, PingReq{1});
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(net.stats().dropped_no_handler, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(NetworkTopologyTest, NonEdgeDrops) {
  sim::Simulator sim;
  Network net(sim, Topology::ring(4), make_fixed_delay(Duration::millis(10)), Rng(1));
  int got = 0;
  net.register_handler(2, [&](const Message&) { ++got; });
  net.send(0, 2, PingReq{1});  // 0-2 is not a ring edge
  net.send(1, 2, PingReq{2});  // 1-2 is
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.stats().dropped_no_edge, 1u);
  EXPECT_EQ(net.stats().sent, 2u);
}

// Misbehaving delay model for the clamp regression test: returns whatever
// it is told, including values outside the (0, bound] contract.
class BrokenDelay final : public DelayModel {
 public:
  BrokenDelay(Duration bound, Duration ret) : DelayModel(bound), ret_(ret) {}
  [[nodiscard]] Duration sample(Rng&, ProcId, ProcId) const override {
    return ret_;
  }

 private:
  Duration ret_;
};

TEST(NetworkDelayViolationTest, NonPositiveDelayIsClampedAndCounted) {
  // Regression: this used to be assert-only, so a model returning
  // delay <= 0 passed silently in builds without asserts.
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(2),
              std::make_unique<BrokenDelay>(Duration::millis(50), Duration::zero()),
              Rng(1));
  double delivered_at = -1.0;
  net.register_handler(1,
                       [&](const Message&) { delivered_at = sim.now().raw(); });
  net.send(0, 1, PingReq{1});
  EXPECT_EQ(net.stats().delay_violations, 1u);
  sim.run_until(SimTau(1.0));
  // Clamped into (0, bound]: delivery still happens, at a positive time.
  EXPECT_GT(delivered_at, 0.0);
  EXPECT_LE(delivered_at, 0.05);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(NetworkDelayViolationTest, OverBoundDelayIsClampedToBound) {
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(2),
              std::make_unique<BrokenDelay>(Duration::millis(50), Duration::millis(200)),
              Rng(1));
  double delivered_at = -1.0;
  net.register_handler(1,
                       [&](const Message&) { delivered_at = sim.now().raw(); });
  net.send(0, 1, PingReq{1});
  EXPECT_EQ(net.stats().delay_violations, 1u);
  sim.run_until(SimTau(1.0));
  EXPECT_NEAR(delivered_at, 0.05, 1e-12);  // exactly the bound
}

// ---------- batched fanout ----------

TEST(NetworkFanoutTest, FanoutDeliversLikeIndependentSends) {
  // Same topology, delay model and seed: a committed fanout must deliver
  // the same messages at the same instants as per-message send() calls.
  const auto run = [](bool use_fanout) {
    sim::Simulator sim;
    Network net(sim, Topology::full_mesh(4),
                make_uniform_delay(Duration::millis(40), Duration::millis(5)), Rng(9));
    std::vector<std::pair<double, ProcId>> deliveries;
    for (ProcId p = 1; p < 4; ++p) {
      net.register_handler(p, [&deliveries, p, &sim](const Message&) {
        deliveries.emplace_back(sim.now().raw(), p);
      });
    }
    if (use_fanout) {
      auto fo = net.fanout(0);
      for (ProcId p = 1; p < 4; ++p) fo.add(p, PingReq{7});
      fo.commit();
    } else {
      for (ProcId p = 1; p < 4; ++p) net.send(0, p, PingReq{7});
    }
    sim.run_until(SimTau(1.0));
    return deliveries;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(NetworkFanoutTest, CancelFanoutDropsUndeliveredMessages) {
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(4),
              std::make_unique<FixedDelay>(Duration::millis(50)), Rng(9));
  int delivered = 0;
  for (ProcId p = 1; p < 4; ++p) {
    net.register_handler(p, [&delivered](const Message&) { ++delivered; });
  }
  auto fo = net.fanout(0);
  for (ProcId p = 1; p < 4; ++p) fo.add(p, PingReq{7});
  const FanoutId id = fo.commit();
  ASSERT_NE(id, kNoFanout);
  EXPECT_TRUE(net.cancel_fanout(id));
  EXPECT_FALSE(net.cancel_fanout(id));  // second cancel must fail
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().sent, 3u);  // counted at add() time, like send()
  EXPECT_EQ(sim.queue_stats().fanout_cancelled, 1u);
}

TEST(NetworkFanoutTest, EmptyFanoutCommitsToNothing) {
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(2),
              std::make_unique<FixedDelay>(Duration::millis(50)), Rng(9));
  auto fo = net.fanout(0);
  EXPECT_EQ(fo.commit(), kNoFanout);
  EXPECT_FALSE(net.cancel_fanout(kNoFanout));
  EXPECT_EQ(sim.queue_stats().fanout_batches, 0u);
}

// A deterministic model whose advertised constant is broken: exercises
// the constant-delay fast path's violation accounting.
class BrokenConstantDelay final : public DelayModel {
 public:
  BrokenConstantDelay(Duration bound, Duration ret) : DelayModel(bound), ret_(ret) {}
  [[nodiscard]] Duration sample(Rng&, ProcId, ProcId) const override {
    return ret_;
  }
  [[nodiscard]] std::optional<Duration> constant_delay() const override {
    return ret_;
  }

 private:
  Duration ret_;
};

TEST(NetworkDelayViolationTest, ConstantFastPathCountsPerMessageViolations) {
  // Regression: the fast path used to validate the constant once at
  // construction and never touch delay_violations, so a broken
  // deterministic model looked clean in the stats while the sampled path
  // counted every send. Both paths must now account identically.
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(2),
              std::make_unique<BrokenConstantDelay>(Duration::millis(50),
                                                    Duration::millis(200)),
              Rng(1));
  double delivered_at = -1.0;
  net.register_handler(1,
                       [&](const Message&) { delivered_at = sim.now().raw(); });
  for (int i = 0; i < 3; ++i) net.send(0, 1, PingReq{1});
  EXPECT_EQ(net.stats().delay_violations, 3u);  // one per message
  sim.run_until(SimTau(1.0));
  EXPECT_NEAR(delivered_at, 0.05, 1e-12);  // clamped to the bound
  EXPECT_EQ(net.stats().delivered, 3u);
}

TEST(NetworkDelayViolationTest, ConformingConstantFastPathCountsNone) {
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(2),
              std::make_unique<FixedDelay>(Duration::millis(50)), Rng(1));
  net.register_handler(1, [](const Message&) {});
  for (int i = 0; i < 100; ++i) net.send(0, 1, PingReq{1});
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(net.stats().delay_violations, 0u);
  EXPECT_EQ(net.stats().delivered, 100u);
}

TEST_F(NetworkTest, WellBehavedModelNeverCountsViolations) {
  net.register_handler(1, [](const Message&) {});
  for (int i = 0; i < 100; ++i) net.send(0, 1, PingReq{1});
  sim.run_until(SimTau(1.0));
  EXPECT_EQ(net.stats().delay_violations, 0u);
}

TEST_F(NetworkTest, CountsSendsByBodyAlternative) {
  net.send(0, 1, PingReq{1});
  net.send(0, 1, PingReq{2});
  net.send(0, 2, PingResp{1, LogicalTime(0.0)});
  net.send(1, 2, RefreshAnnounce{1, 2});
  const auto& by_body = net.stats().sent_by_body;
  EXPECT_EQ(by_body[Body{PingReq{}}.index()], 2u);
  EXPECT_EQ(by_body[Body{PingResp{}}.index()], 1u);
  EXPECT_EQ(by_body[Body{RefreshAnnounce{}}.index()], 1u);
  EXPECT_EQ(by_body[Body{StRoundMsg{}}.index()], 0u);
  EXPECT_STREQ(body_name(Body{PingReq{}}.index()), "PingReq");
  EXPECT_STREQ(body_name(kBodyAlternatives), "?");
}

TEST(NetworkOrderTest, ConcurrentMessagesAllArrive) {
  sim::Simulator sim;
  Network net(sim, Topology::full_mesh(5),
              make_uniform_delay(Duration::millis(50)), Rng(9));
  std::map<int, int> received;
  for (int p = 0; p < 5; ++p)
    net.register_handler(p, [&received, p](const Message&) { ++received[p]; });
  for (int a = 0; a < 5; ++a)
    for (int b = 0; b < 5; ++b)
      if (a != b) net.send(a, b, PingReq{static_cast<std::uint64_t>(a * 10 + b)});
  sim.run_until(SimTau(1.0));
  for (int p = 0; p < 5; ++p) EXPECT_EQ(received[p], 4) << "proc " << p;
  EXPECT_EQ(net.stats().delivered, 20u);
}

}  // namespace
}  // namespace czsync::net
