# Driver for the `asan_suite` ctest entry: configure + build an
# AddressSanitizer copy of the library and the hot-path test binaries in
# a nested build directory, then run them. Any heap error (use-after-free
# of a recycled pool slot, out-of-bounds slab access, leak of a fallback
# allocation) makes the binaries exit nonzero, which fails the ctest
# entry.
#
# Expects -DSOURCE_DIR=... and -DBUILD_DIR=... on the cmake -P line.
if(NOT DEFINED SOURCE_DIR OR NOT DEFINED BUILD_DIR)
  message(FATAL_ERROR "run_asan_suite.cmake needs SOURCE_DIR and BUILD_DIR")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DCZSYNC_SANITIZE=address
          -DCZSYNC_BUILD_BENCH=OFF
          -DCZSYNC_BUILD_EXAMPLES=OFF
  RESULT_VARIABLE cfg_result)
if(NOT cfg_result EQUAL 0)
  message(FATAL_ERROR "ASan sub-build configure failed (${cfg_result})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --parallel
          --target sim_test net_test event_pool_test
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "ASan sub-build compile failed (${build_result})")
endif()

foreach(bin sim_test net_test event_pool_test)
  execute_process(
    COMMAND ${BUILD_DIR}/tests/${bin}
    RESULT_VARIABLE run_result)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR
            "${bin} failed under AddressSanitizer (${run_result})")
  endif()
endforeach()
