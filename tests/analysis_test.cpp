// Unit tests for the analysis layer: observer status classification and
// metrics, node dispatch, world construction, RunResult helpers.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "analysis/experiment.h"
#include "analysis/trace_io.h"
#include "analysis/world.h"

namespace czsync::analysis {
namespace {

Scenario small(std::uint64_t seed = 1) {
  Scenario s;
  s.model.n = 4;
  s.model.f = 1;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.horizon = Duration::hours(2);
  s.sample_period = Duration::minutes(1);
  s.record_series = true;
  s.seed = seed;
  return s;
}

// ---------- observer classification (Def. 3's quantifier) ----------

TEST(ObserverClassification, FaultyDuringControl) {
  auto s = small();
  s.schedule = adversary::Schedule::single(2, SimTau(1800.0), SimTau(2400.0));
  s.strategy = "silent";
  const auto r = run_scenario(s);
  for (const auto& smp : r.series) {
    const auto st = smp.status[2];
    const double t = smp.t.raw();
    if (t >= 1800.0 && t < 2400.0) {
      EXPECT_EQ(st, ProcStatus::Faulty) << t;
    } else if (t >= 2400.0 && t < 2400.0 + 3600.0) {
      EXPECT_EQ(st, ProcStatus::Recovering) << t;
    } else if (t < 1800.0) {
      EXPECT_EQ(st, ProcStatus::Stable) << t;
    } else {
      EXPECT_EQ(st, ProcStatus::Stable) << t;  // t >= leave + Delta
    }
    // Everyone else is stable throughout.
    EXPECT_EQ(smp.status[0], ProcStatus::Stable);
    EXPECT_EQ(smp.status[1], ProcStatus::Stable);
    EXPECT_EQ(smp.status[3], ProcStatus::Stable);
  }
}

TEST(ObserverClassification, StableDeviationExcludesNonStable) {
  auto s = small(2);
  s.schedule = adversary::Schedule::single(0, SimTau(1800.0), SimTau(2400.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(30);  // a huge bias on the victim
  const auto r = run_scenario(s);
  for (const auto& smp : r.series) {
    const double t = smp.t.raw();
    if (t >= 1800.0 && t < 2400.0 + 60.0) {
      // While the smashed clock is excluded, the deviation of the three
      // stable processors stays tiny.
      EXPECT_LT(smp.stable_deviation, 0.5) << t;
    }
  }
  EXPECT_LT(r.max_stable_deviation.sec(), 0.5);
}

TEST(ObserverClassification, RecoveryEventRecorded) {
  auto s = small(3);
  s.schedule = adversary::Schedule::single(1, SimTau(1800.0), SimTau(1860.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(5);
  const auto r = run_scenario(s);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.recoveries[0].proc, 1);
  EXPECT_DOUBLE_EQ(r.recoveries[0].left_at.raw(), 1860.0);
  EXPECT_TRUE(r.recoveries[0].recovered);
  EXPECT_TRUE(r.recoveries[0].judgeable);
  EXPECT_GT(r.recoveries[0].duration.sec(), 0.0);
}

TEST(ObserverClassification, LateLeaveIsUnjudgeable) {
  auto s = small(4);
  // Leave 10 minutes before the horizon: less than Delta of budget left.
  s.schedule = adversary::Schedule::single(1, SimTau(6000.0), SimTau(6600.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::hours(2);
  const auto r = run_scenario(s);
  ASSERT_EQ(r.recoveries.size(), 1u);
  // It may well have recovered (WayOff is fast); but if it did not, it
  // must not count against all_recovered().
  if (!r.recoveries[0].recovered) {
    EXPECT_FALSE(r.recoveries[0].judgeable);
    EXPECT_TRUE(r.all_recovered());
  }
}

TEST(ObserverClassification, PreemptedRecoverySkipped) {
  auto s = small(5);
  // Same processor broken twice; the second break-in lands before the
  // paper's Delta passed after the first leave... which would violate
  // Def. 2 for f=1 — here we deliberately test observer bookkeeping, not
  // the protocol guarantee.
  s.schedule = adversary::Schedule(
      {{1, SimTau(1800.0), SimTau(1860.0)},
       {1, SimTau(1900.0), SimTau(2000.0)}});
  s.strategy = "silent";
  const auto r = run_scenario(s);
  ASSERT_EQ(r.recoveries.size(), 2u);
  // The first event is either recovered within [1860, 1900) (only if a
  // sample landed there — with 60 s sampling it does not) or preempted.
  EXPECT_TRUE(r.recoveries[0].preempted || r.recoveries[0].recovered);
  EXPECT_TRUE(r.recoveries[1].recovered);
}

// ---------- node dispatch ----------

TEST(NodeDispatch, AppHandlerReceivesNonSyncMessages) {
  World world(small(6));
  int got = 0;
  world.node(1).app_handler = [&](const net::Message& m) {
    if (std::holds_alternative<net::TimestampReq>(m.body)) ++got;
  };
  world.node(0).send(1, net::TimestampReq{7});
  world.simulator().run_until(SimTau(1.0));
  EXPECT_EQ(got, 1);
}

TEST(NodeDispatch, AppSuspendResumeHooksFire) {
  auto s = small(7);
  s.schedule = adversary::Schedule::single(2, SimTau(600.0), SimTau(1200.0));
  s.strategy = "silent";
  World world(s);
  int suspends = 0, resumes = 0;
  world.node(2).app_suspend = [&] { ++suspends; };
  world.node(2).app_resume = [&] { ++resumes; };
  world.run();
  EXPECT_EQ(suspends, 1);
  EXPECT_EQ(resumes, 1);
}

TEST(NodeDispatch, BiasMatchesClockMinusRealTime) {
  World world(small(8));
  auto& node = world.node(0);
  world.simulator().run_until(SimTau(100.0));
  const double expect = node.logical().read().raw() - 100.0;
  EXPECT_NEAR(node.bias().sec(), expect, 1e-12);
}

// ---------- world construction ----------

TEST(WorldBuild, DerivesProtocolParams) {
  World world(small(9));
  const auto& p = world.protocol_params();
  EXPECT_DOUBLE_EQ(p.max_wait.sec(), 0.1);  // 2 delta
  EXPECT_GT(p.way_off.sec(), 0.8);
  EXPECT_TRUE(world.bounds().k_precondition_ok);
  EXPECT_EQ(world.node_count(), 4u);
}

TEST(WorldBuild, WayOffScaleMultipliesThreshold) {
  auto s = small(13);
  World base(s);
  const double derived = base.protocol_params().way_off.sec();
  s.way_off_scale = 4.0;
  World scaled(s);
  EXPECT_NEAR(scaled.protocol_params().way_off.sec(), 4.0 * derived, 1e-12);
}

TEST(WorldBuild, TinyWayOffCausesSteadyEscapes) {
  auto s = small(14);
  s.horizon = Duration::hours(3);
  s.way_off_scale = 0.02;  // below the reading error: step 10 misfires
  const auto r = run_scenario(s);
  EXPECT_GT(r.way_off_rounds, 10u);
  auto s2 = s;
  s2.way_off_scale = 1.0;
  const auto r2 = run_scenario(s2);
  EXPECT_EQ(r2.way_off_rounds, 0u);
}

TEST(WorldBuild, LargeWayOffSlowsMidRangeRecovery) {
  auto s = small(15);
  s.horizon = Duration::hours(3);
  s.sample_period = Duration::seconds(5);
  s.schedule = adversary::Schedule::single(1, SimTau(3600.0), SimTau(3660.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::seconds(5);
  const auto fast = run_scenario(s);
  auto s2 = s;
  s2.way_off_scale = 32.0;  // 5 s now falls inside WayOff: halving only
  const auto slow = run_scenario(s2);
  EXPECT_TRUE(fast.all_recovered());
  EXPECT_TRUE(slow.all_recovered());
  EXPECT_GT(slow.max_recovery_time().sec(),
            fast.max_recovery_time().sec() + 30.0);
}

TEST(WorldBuild, UnknownProtocolThrows) {
  auto s = small(10);
  s.protocol = "quantum";
  EXPECT_THROW(World w(s), std::invalid_argument);
}

TEST(WorldBuild, NoAdversaryMeansNullEngine) {
  World world(small(11));
  EXPECT_EQ(world.adversary(), nullptr);
}

TEST(WorldBuild, AdversaryAttachedWhenScheduled) {
  auto s = small(12);
  s.schedule = adversary::Schedule::single(0, SimTau(10.0), SimTau(20.0));
  World world(s);
  ASSERT_NE(world.adversary(), nullptr);
  world.simulator().run_until(SimTau(15.0));
  EXPECT_TRUE(world.adversary()->is_controlled(0));
  EXPECT_TRUE(world.node(0).controlled());
  EXPECT_FALSE(world.node(1).controlled());
}

// ---------- RunResult helpers ----------

TEST(RunResultTest, MaxRecoverySkipsPreemptedAndUnjudgeable) {
  RunResult r;
  RecoveryEvent a;
  a.recovered = true;
  a.duration = Duration::seconds(10);
  RecoveryEvent b;
  b.preempted = true;
  b.duration = Duration::infinity();
  RecoveryEvent c;
  c.judgeable = false;
  c.duration = Duration::infinity();
  r.recoveries = {a, b, c};
  EXPECT_DOUBLE_EQ(r.max_recovery_time().sec(), 10.0);
  EXPECT_TRUE(r.all_recovered());
  RecoveryEvent d;  // judged and failed
  r.recoveries.push_back(d);
  EXPECT_FALSE(r.all_recovered());
}

TEST(RecoveryEventTest, ProcDefaultsToEmptyOptional) {
  RecoveryEvent ev;
  EXPECT_FALSE(ev.proc.has_value());
  ev.proc = 3;
  EXPECT_EQ(ev.proc, 3);
}

TEST(RunResultTest, CarriesUnifiedMetricsSnapshot) {
  auto s = small(9);
  s.schedule =
      adversary::Schedule::single(1, SimTau(1800.0), SimTau(1860.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(5);
  const auto r = run_scenario(s);
  // One snapshot spanning every layer (the four legacy stats structs).
  for (const char* key :
       {"sim.events_executed", "sim.event_pool.pushed",
        "sim.event_pool.popped", "net.sent", "net.delivered",
        "core.rounds_completed", "core.responses_ok", "observer.samples",
        "observer.recovery_events", "adversary.break_ins"}) {
    EXPECT_TRUE(r.metrics.contains(key)) << key;
  }
  EXPECT_EQ(r.metrics.value("sim.events_executed"),
            static_cast<double>(r.events_executed));
  EXPECT_EQ(r.metrics.value("net.sent"),
            static_cast<double>(r.messages_sent));
  EXPECT_EQ(r.metrics.value("adversary.break_ins"),
            static_cast<double>(r.break_ins));
  EXPECT_EQ(r.metrics.value("observer.recovery_events"), 1.0);
  // The pooled queue recycles slots: no fallback heap allocations.
  EXPECT_EQ(r.metrics.value("sim.event_pool.fallback_allocs"), 0.0);
}

// ---------- series CSV precondition ----------

TEST(SeriesCsvTest, ThrowsInvalidArgumentWithoutRecordSeries) {
  auto s = small(3);
  s.record_series = false;
  const auto r = run_scenario(s);
  ASSERT_TRUE(r.series.empty());
  std::ostringstream os;
  EXPECT_THROW(write_series_csv(os, r), std::invalid_argument);
  EXPECT_TRUE(os.str().empty());
  try {
    write_series_csv(os, r);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Actionable message: names the fix, not just the symptom.
    EXPECT_NE(std::string(e.what()).find("record_series"), std::string::npos);
  }
}

TEST(SeriesCsvTest, SucceedsWithRecordSeries) {
  const auto r = run_scenario(small(3));
  ASSERT_FALSE(r.series.empty());
  std::ostringstream os;
  EXPECT_NO_THROW(write_series_csv(os, r));
  EXPECT_NE(os.str().find("stable_deviation"), std::string::npos);
}

}  // namespace
}  // namespace czsync::analysis
