// Unit tests for the discrete-event simulator substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace czsync::sim {
namespace {

// ---------- EventQueue ----------

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTau(3.0), [&] { order.push_back(3); });
  q.push(SimTau(1.0), [&] { order.push_back(1); });
  q.push(SimTau(2.0), [&] { order.push_back(2); });
  while (!q.empty()) {
    SimTau t{};
    q.pop(t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(SimTau(1.0), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    SimTau t{};
    q.pop(t)();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPendingEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(SimTau(1.0), [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(SimTau(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelUnknownFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(999));
  EXPECT_FALSE(q.cancel(kNoEvent));
}

TEST(EventQueueTest, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> order;
  const EventId first = q.push(SimTau(1.0), [&] { order.push_back(1); });
  q.push(SimTau(2.0), [&] { order.push_back(2); });
  q.cancel(first);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), SimTau(2.0));
  SimTau t{};
  q.pop(t)();
  EXPECT_EQ(order, std::vector<int>{2});
}

TEST(EventQueueTest, FifoAtEqualTimesSurvivesInterleavedCancellations) {
  // FIFO order among equal-time events must hold even when cancellations
  // and same-time pushes are interleaved with pops (the ordering is
  // (SimTau, push sequence), not anything dependent on slot indices,
  // which cancellation recycles).
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.push(SimTau(1.0), [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(q.cancel(ids[0]));
  EXPECT_TRUE(q.cancel(ids[3]));
  SimTau t{};
  q.pop(t)();  // fires 1 (0 was cancelled)
  EXPECT_EQ(t, SimTau(1.0));
  EXPECT_TRUE(q.cancel(ids[2]));
  // A same-time push lands after every earlier same-time event, even
  // though it likely reuses a cancelled event's slot.
  q.push(SimTau(1.0), [&order] { order.push_back(8); });
  q.pop(t)();  // fires 4 (2 and 3 cancelled)
  EXPECT_TRUE(q.cancel(ids[5]));
  while (!q.empty()) q.pop(t)();
  EXPECT_EQ(order, (std::vector<int>{1, 4, 6, 7, 8}));
}

TEST(EventQueueTest, EqualTimeOrderingIsExactForNegativeAndTinyTimes) {
  // The comparator goes through SimTau's ordering; exercise exact
  // equality at a negative instant and distinctness one ulp apart.
  EventQueue q;
  std::vector<int> order;
  const double base = -3.5;
  q.push(SimTau(std::nextafter(base, 0.0)), [&] { order.push_back(2); });
  q.push(SimTau(base), [&] { order.push_back(0); });
  q.push(SimTau(base), [&] { order.push_back(1); });
  while (!q.empty()) {
    SimTau t{};
    q.pop(t)();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.push(SimTau(1.0), [] {});
  SimTau t{};
  q.pop(t);
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(SimTau(1.0), [] {});
  q.push(SimTau(2.0), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  SimTau t{};
  q.pop(t);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.total_pushed(), 2u);
}

// ---------- Simulator ----------

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTau::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, AdvancesTimeToEvents) {
  Simulator sim;
  std::vector<double> fire_times;
  sim.schedule_after(Duration::seconds(5), [&] { fire_times.push_back(sim.now().raw()); });
  sim.schedule_after(Duration::seconds(2), [&] { fire_times.push_back(sim.now().raw()); });
  sim.run_until(SimTau(10.0));
  EXPECT_EQ(fire_times, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now().raw(), 10.0);  // clamps to limit
}

TEST(SimulatorTest, RunUntilExecutesEventsExactlyAtLimit) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(SimTau(10.0), [&] { fired = true; });
  sim.run_until(SimTau(10.0));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsBeyondLimitStayPending) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(SimTau(11.0), [&] { fired = true; });
  sim.run_until(SimTau(10.0));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(SimTau(12.0));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_after(Duration::seconds(1), [&] {
    times.push_back(sim.now().raw());
    sim.schedule_after(Duration::seconds(1), [&] { times.push_back(sim.now().raw()); });
  });
  sim.run_until(SimTau(5.0));
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(SimulatorTest, PastSchedulesClampToNow) {
  Simulator sim;
  sim.schedule_after(Duration::seconds(5), [] {});
  sim.run_until(SimTau(5.0));
  bool fired = false;
  sim.schedule_at(SimTau(1.0), [&] { fired = true; });  // in the past
  sim.run_until(SimTau(5.0));
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now().raw(), 5.0);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::seconds(-3), [&] { fired = true; });
  sim.run_until(SimTau(0.0));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(Duration::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(SimTau(2.0));
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_after(Duration::seconds(1), [&] { ++count; });
  sim.schedule_after(Duration::seconds(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, StepRespectsLimit) {
  Simulator sim;
  sim.schedule_after(Duration::seconds(5), [] {});
  EXPECT_FALSE(sim.step(SimTau(1.0)));
  EXPECT_TRUE(sim.step(SimTau(5.0)));
}

TEST(SimulatorTest, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_after(Duration::seconds(i), [] {});
  sim.run_until(SimTau(100.0));
  EXPECT_EQ(sim.executed_events(), 10u);
}

TEST(SimulatorTest, MillionEventsThroughput) {
  // Smoke guard: the queue must handle large event counts comfortably.
  Simulator sim;
  long counter = 0;
  std::function<void()> chain = [&] {
    if (++counter < 200000) sim.schedule_after(Duration::millis(1), chain);
  };
  sim.schedule_after(Duration::millis(1), chain);
  sim.run_until(SimTau::infinity());
  EXPECT_EQ(counter, 200000);
}

TEST(SimulatorTest, NextEventTimeReportsEarliestDueEvent) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), SimTau::infinity());
  sim.schedule_after(Duration::seconds(5), [] {});
  const EventId early = sim.schedule_after(Duration::seconds(2), [] {});
  EXPECT_EQ(sim.next_event_time(), SimTau(2.0));
  sim.cancel(early);
  EXPECT_EQ(sim.next_event_time(), SimTau(5.0));
}

TEST(SimulatorTest, AdvanceToSkipsQuietIntervalsInOneStep) {
  // The quiet-interval batch-step: a time-driven caller jumps straight
  // over an eventless stretch without per-event heap traffic, but is
  // refused (time and events untouched) whenever an event is due first.
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(10), [&fired] { ++fired; });

  EXPECT_TRUE(sim.advance_to(SimTau(7.5)));  // quiet: jump succeeds
  EXPECT_EQ(sim.now(), SimTau(7.5));
  EXPECT_EQ(fired, 0);

  EXPECT_FALSE(sim.advance_to(SimTau(30.0)));  // event at 10 is due first
  EXPECT_EQ(sim.now(), SimTau(7.5));           // refused: now unchanged
  EXPECT_EQ(fired, 0);

  EXPECT_TRUE(sim.step(SimTau(30.0)));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.advance_to(SimTau(30.0)));  // queue empty: always quiet
  EXPECT_EQ(sim.now(), SimTau(30.0));
  EXPECT_TRUE(sim.advance_to(SimTau(30.0)));  // t <= now trivially succeeds
  EXPECT_TRUE(sim.advance_to(SimTau(5.0)));
  EXPECT_EQ(sim.now(), SimTau(30.0));  // never moves backwards
}

TEST(SimulatorTest, AdvanceToBoundaryEventCounts) {
  // An event exactly at the target instant blocks the jump: "no due
  // events <= t" is inclusive, so the caller steps it first and retries.
  Simulator sim;
  sim.schedule_after(Duration::seconds(3), [] {});
  EXPECT_FALSE(sim.advance_to(SimTau(3.0)));
  EXPECT_TRUE(sim.step(SimTau::infinity()));
  EXPECT_TRUE(sim.advance_to(SimTau(3.0)));
}

TEST(SimulatorTest, DeterministicInterleaving) {
  // Two identical simulations must execute identical schedules.
  auto run = [] {
    Simulator sim;
    std::vector<double> times;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_after(Duration::seconds((i * 37) % 11), [&times, &sim] {
        times.push_back(sim.now().raw());
      });
    }
    sim.run_until(SimTau(20.0));
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace czsync::sim
