file(REMOVE_RECURSE
  "CMakeFiles/czsync_cli.dir/czsync_cli.cpp.o"
  "CMakeFiles/czsync_cli.dir/czsync_cli.cpp.o.d"
  "czsync_cli"
  "czsync_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
