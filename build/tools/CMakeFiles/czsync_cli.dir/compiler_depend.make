# Empty compiler generated dependencies file for czsync_cli.
# This may be replaced when dependencies are built.
