file(REMOVE_RECURSE
  "CMakeFiles/bench_wayoff.dir/bench_wayoff.cpp.o"
  "CMakeFiles/bench_wayoff.dir/bench_wayoff.cpp.o.d"
  "bench_wayoff"
  "bench_wayoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wayoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
