# Empty compiler generated dependencies file for bench_wayoff.
# This may be replaced when dependencies are built.
