file(REMOVE_RECURSE
  "CMakeFiles/bench_discipline.dir/bench_discipline.cpp.o"
  "CMakeFiles/bench_discipline.dir/bench_discipline.cpp.o.d"
  "bench_discipline"
  "bench_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
