# Empty compiler generated dependencies file for bench_discipline.
# This may be replaced when dependencies are built.
