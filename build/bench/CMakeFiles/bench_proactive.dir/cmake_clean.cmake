file(REMOVE_RECURSE
  "CMakeFiles/bench_proactive.dir/bench_proactive.cpp.o"
  "CMakeFiles/bench_proactive.dir/bench_proactive.cpp.o.d"
  "bench_proactive"
  "bench_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
