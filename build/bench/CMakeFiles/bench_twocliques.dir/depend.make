# Empty dependencies file for bench_twocliques.
# This may be replaced when dependencies are built.
