file(REMOVE_RECURSE
  "CMakeFiles/bench_twocliques.dir/bench_twocliques.cpp.o"
  "CMakeFiles/bench_twocliques.dir/bench_twocliques.cpp.o.d"
  "bench_twocliques"
  "bench_twocliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_twocliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
