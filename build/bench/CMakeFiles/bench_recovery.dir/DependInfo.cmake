
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_recovery.cpp" "bench/CMakeFiles/bench_recovery.dir/bench_recovery.cpp.o" "gcc" "bench/CMakeFiles/bench_recovery.dir/bench_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/czsync_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/proactive/CMakeFiles/czsync_proactive.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/czsync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/czsync_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/czsync_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/czsync_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/czsync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/czsync_util.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/czsync_broadcast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
