file(REMOVE_RECURSE
  "CMakeFiles/bench_deviation.dir/bench_deviation.cpp.o"
  "CMakeFiles/bench_deviation.dir/bench_deviation.cpp.o.d"
  "bench_deviation"
  "bench_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
