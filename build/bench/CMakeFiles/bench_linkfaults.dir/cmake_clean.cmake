file(REMOVE_RECURSE
  "CMakeFiles/bench_linkfaults.dir/bench_linkfaults.cpp.o"
  "CMakeFiles/bench_linkfaults.dir/bench_linkfaults.cpp.o.d"
  "bench_linkfaults"
  "bench_linkfaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linkfaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
