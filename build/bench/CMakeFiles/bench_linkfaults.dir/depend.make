# Empty dependencies file for bench_linkfaults.
# This may be replaced when dependencies are built.
