# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/adversary_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sync_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/proactive_test[1]_include.cmake")
include("/root/repo/build/tests/discipline_test[1]_include.cmake")
include("/root/repo/build/tests/linkfaults_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/topology_gen_test[1]_include.cmake")
include("/root/repo/build/tests/round_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/caching_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/broadcast_test[1]_include.cmake")
include("/root/repo/build/tests/engine_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/model_check_test[1]_include.cmake")
