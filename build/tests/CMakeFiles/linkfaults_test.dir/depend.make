# Empty dependencies file for linkfaults_test.
# This may be replaced when dependencies are built.
