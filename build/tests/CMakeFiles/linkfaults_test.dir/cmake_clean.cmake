file(REMOVE_RECURSE
  "CMakeFiles/linkfaults_test.dir/linkfaults_test.cpp.o"
  "CMakeFiles/linkfaults_test.dir/linkfaults_test.cpp.o.d"
  "linkfaults_test"
  "linkfaults_test.pdb"
  "linkfaults_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkfaults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
