# Empty dependencies file for topology_gen_test.
# This may be replaced when dependencies are built.
