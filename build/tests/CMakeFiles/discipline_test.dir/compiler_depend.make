# Empty compiler generated dependencies file for discipline_test.
# This may be replaced when dependencies are built.
