# Empty dependencies file for round_protocol_test.
# This may be replaced when dependencies are built.
