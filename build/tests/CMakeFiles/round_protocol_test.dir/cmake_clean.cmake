file(REMOVE_RECURSE
  "CMakeFiles/round_protocol_test.dir/round_protocol_test.cpp.o"
  "CMakeFiles/round_protocol_test.dir/round_protocol_test.cpp.o.d"
  "round_protocol_test"
  "round_protocol_test.pdb"
  "round_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
