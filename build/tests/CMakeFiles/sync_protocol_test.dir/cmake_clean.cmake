file(REMOVE_RECURSE
  "CMakeFiles/sync_protocol_test.dir/sync_protocol_test.cpp.o"
  "CMakeFiles/sync_protocol_test.dir/sync_protocol_test.cpp.o.d"
  "sync_protocol_test"
  "sync_protocol_test.pdb"
  "sync_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
