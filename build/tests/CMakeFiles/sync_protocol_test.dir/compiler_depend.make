# Empty compiler generated dependencies file for sync_protocol_test.
# This may be replaced when dependencies are built.
