file(REMOVE_RECURSE
  "CMakeFiles/timestamping_attack.dir/timestamping_attack.cpp.o"
  "CMakeFiles/timestamping_attack.dir/timestamping_attack.cpp.o.d"
  "timestamping_attack"
  "timestamping_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamping_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
