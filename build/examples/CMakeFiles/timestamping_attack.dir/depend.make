# Empty dependencies file for timestamping_attack.
# This may be replaced when dependencies are built.
