# Empty dependencies file for proactive_service.
# This may be replaced when dependencies are built.
