file(REMOVE_RECURSE
  "CMakeFiles/proactive_service.dir/proactive_service.cpp.o"
  "CMakeFiles/proactive_service.dir/proactive_service.cpp.o.d"
  "proactive_service"
  "proactive_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
