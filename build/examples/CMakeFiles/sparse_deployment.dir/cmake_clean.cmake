file(REMOVE_RECURSE
  "CMakeFiles/sparse_deployment.dir/sparse_deployment.cpp.o"
  "CMakeFiles/sparse_deployment.dir/sparse_deployment.cpp.o.d"
  "sparse_deployment"
  "sparse_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
