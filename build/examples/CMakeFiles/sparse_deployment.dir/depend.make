# Empty dependencies file for sparse_deployment.
# This may be replaced when dependencies are built.
