file(REMOVE_RECURSE
  "CMakeFiles/czsync_analysis.dir/experiment.cpp.o"
  "CMakeFiles/czsync_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/czsync_analysis.dir/node.cpp.o"
  "CMakeFiles/czsync_analysis.dir/node.cpp.o.d"
  "CMakeFiles/czsync_analysis.dir/observer.cpp.o"
  "CMakeFiles/czsync_analysis.dir/observer.cpp.o.d"
  "CMakeFiles/czsync_analysis.dir/sweep.cpp.o"
  "CMakeFiles/czsync_analysis.dir/sweep.cpp.o.d"
  "CMakeFiles/czsync_analysis.dir/trace_io.cpp.o"
  "CMakeFiles/czsync_analysis.dir/trace_io.cpp.o.d"
  "CMakeFiles/czsync_analysis.dir/world.cpp.o"
  "CMakeFiles/czsync_analysis.dir/world.cpp.o.d"
  "libczsync_analysis.a"
  "libczsync_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
