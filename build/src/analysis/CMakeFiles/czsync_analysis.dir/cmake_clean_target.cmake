file(REMOVE_RECURSE
  "libczsync_analysis.a"
)
