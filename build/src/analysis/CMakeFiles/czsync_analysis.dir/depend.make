# Empty dependencies file for czsync_analysis.
# This may be replaced when dependencies are built.
