# Empty compiler generated dependencies file for czsync_proactive.
# This may be replaced when dependencies are built.
