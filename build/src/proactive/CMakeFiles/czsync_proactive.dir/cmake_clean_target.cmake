file(REMOVE_RECURSE
  "libczsync_proactive.a"
)
