file(REMOVE_RECURSE
  "CMakeFiles/czsync_proactive.dir/audit.cpp.o"
  "CMakeFiles/czsync_proactive.dir/audit.cpp.o.d"
  "CMakeFiles/czsync_proactive.dir/refresh.cpp.o"
  "CMakeFiles/czsync_proactive.dir/refresh.cpp.o.d"
  "CMakeFiles/czsync_proactive.dir/secret_sharing.cpp.o"
  "CMakeFiles/czsync_proactive.dir/secret_sharing.cpp.o.d"
  "libczsync_proactive.a"
  "libczsync_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
