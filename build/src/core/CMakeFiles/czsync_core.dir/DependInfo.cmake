
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/convergence.cpp" "src/core/CMakeFiles/czsync_core.dir/convergence.cpp.o" "gcc" "src/core/CMakeFiles/czsync_core.dir/convergence.cpp.o.d"
  "/root/repo/src/core/discipline.cpp" "src/core/CMakeFiles/czsync_core.dir/discipline.cpp.o" "gcc" "src/core/CMakeFiles/czsync_core.dir/discipline.cpp.o.d"
  "/root/repo/src/core/envelope.cpp" "src/core/CMakeFiles/czsync_core.dir/envelope.cpp.o" "gcc" "src/core/CMakeFiles/czsync_core.dir/envelope.cpp.o.d"
  "/root/repo/src/core/estimate.cpp" "src/core/CMakeFiles/czsync_core.dir/estimate.cpp.o" "gcc" "src/core/CMakeFiles/czsync_core.dir/estimate.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/czsync_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/czsync_core.dir/params.cpp.o.d"
  "/root/repo/src/core/round_protocol.cpp" "src/core/CMakeFiles/czsync_core.dir/round_protocol.cpp.o" "gcc" "src/core/CMakeFiles/czsync_core.dir/round_protocol.cpp.o.d"
  "/root/repo/src/core/sync_protocol.cpp" "src/core/CMakeFiles/czsync_core.dir/sync_protocol.cpp.o" "gcc" "src/core/CMakeFiles/czsync_core.dir/sync_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/czsync_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/czsync_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/czsync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/czsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
