file(REMOVE_RECURSE
  "libczsync_core.a"
)
