file(REMOVE_RECURSE
  "CMakeFiles/czsync_core.dir/convergence.cpp.o"
  "CMakeFiles/czsync_core.dir/convergence.cpp.o.d"
  "CMakeFiles/czsync_core.dir/discipline.cpp.o"
  "CMakeFiles/czsync_core.dir/discipline.cpp.o.d"
  "CMakeFiles/czsync_core.dir/envelope.cpp.o"
  "CMakeFiles/czsync_core.dir/envelope.cpp.o.d"
  "CMakeFiles/czsync_core.dir/estimate.cpp.o"
  "CMakeFiles/czsync_core.dir/estimate.cpp.o.d"
  "CMakeFiles/czsync_core.dir/params.cpp.o"
  "CMakeFiles/czsync_core.dir/params.cpp.o.d"
  "CMakeFiles/czsync_core.dir/round_protocol.cpp.o"
  "CMakeFiles/czsync_core.dir/round_protocol.cpp.o.d"
  "CMakeFiles/czsync_core.dir/sync_protocol.cpp.o"
  "CMakeFiles/czsync_core.dir/sync_protocol.cpp.o.d"
  "libczsync_core.a"
  "libczsync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
