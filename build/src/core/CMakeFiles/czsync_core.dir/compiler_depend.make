# Empty compiler generated dependencies file for czsync_core.
# This may be replaced when dependencies are built.
