# Empty compiler generated dependencies file for czsync_util.
# This may be replaced when dependencies are built.
