file(REMOVE_RECURSE
  "libczsync_util.a"
)
