file(REMOVE_RECURSE
  "CMakeFiles/czsync_util.dir/config.cpp.o"
  "CMakeFiles/czsync_util.dir/config.cpp.o.d"
  "CMakeFiles/czsync_util.dir/csv.cpp.o"
  "CMakeFiles/czsync_util.dir/csv.cpp.o.d"
  "CMakeFiles/czsync_util.dir/logging.cpp.o"
  "CMakeFiles/czsync_util.dir/logging.cpp.o.d"
  "CMakeFiles/czsync_util.dir/rng.cpp.o"
  "CMakeFiles/czsync_util.dir/rng.cpp.o.d"
  "CMakeFiles/czsync_util.dir/stats.cpp.o"
  "CMakeFiles/czsync_util.dir/stats.cpp.o.d"
  "CMakeFiles/czsync_util.dir/table.cpp.o"
  "CMakeFiles/czsync_util.dir/table.cpp.o.d"
  "libczsync_util.a"
  "libczsync_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
