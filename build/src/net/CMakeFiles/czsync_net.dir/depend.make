# Empty dependencies file for czsync_net.
# This may be replaced when dependencies are built.
