file(REMOVE_RECURSE
  "libczsync_net.a"
)
