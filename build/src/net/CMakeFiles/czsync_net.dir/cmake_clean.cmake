file(REMOVE_RECURSE
  "CMakeFiles/czsync_net.dir/delay_model.cpp.o"
  "CMakeFiles/czsync_net.dir/delay_model.cpp.o.d"
  "CMakeFiles/czsync_net.dir/link_faults.cpp.o"
  "CMakeFiles/czsync_net.dir/link_faults.cpp.o.d"
  "CMakeFiles/czsync_net.dir/network.cpp.o"
  "CMakeFiles/czsync_net.dir/network.cpp.o.d"
  "CMakeFiles/czsync_net.dir/topology.cpp.o"
  "CMakeFiles/czsync_net.dir/topology.cpp.o.d"
  "libczsync_net.a"
  "libczsync_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
