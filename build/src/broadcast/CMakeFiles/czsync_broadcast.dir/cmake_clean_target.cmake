file(REMOVE_RECURSE
  "libczsync_broadcast.a"
)
