file(REMOVE_RECURSE
  "CMakeFiles/czsync_broadcast.dir/auth.cpp.o"
  "CMakeFiles/czsync_broadcast.dir/auth.cpp.o.d"
  "CMakeFiles/czsync_broadcast.dir/replay_strategy.cpp.o"
  "CMakeFiles/czsync_broadcast.dir/replay_strategy.cpp.o.d"
  "CMakeFiles/czsync_broadcast.dir/st_sync.cpp.o"
  "CMakeFiles/czsync_broadcast.dir/st_sync.cpp.o.d"
  "libczsync_broadcast.a"
  "libczsync_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
