# Empty dependencies file for czsync_broadcast.
# This may be replaced when dependencies are built.
