file(REMOVE_RECURSE
  "CMakeFiles/czsync_adversary.dir/adversary.cpp.o"
  "CMakeFiles/czsync_adversary.dir/adversary.cpp.o.d"
  "CMakeFiles/czsync_adversary.dir/schedule.cpp.o"
  "CMakeFiles/czsync_adversary.dir/schedule.cpp.o.d"
  "CMakeFiles/czsync_adversary.dir/strategies.cpp.o"
  "CMakeFiles/czsync_adversary.dir/strategies.cpp.o.d"
  "libczsync_adversary.a"
  "libczsync_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
