# Empty dependencies file for czsync_adversary.
# This may be replaced when dependencies are built.
