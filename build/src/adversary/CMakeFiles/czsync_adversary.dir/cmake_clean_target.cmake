file(REMOVE_RECURSE
  "libczsync_adversary.a"
)
