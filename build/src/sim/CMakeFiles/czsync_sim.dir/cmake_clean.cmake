file(REMOVE_RECURSE
  "CMakeFiles/czsync_sim.dir/event_queue.cpp.o"
  "CMakeFiles/czsync_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/czsync_sim.dir/simulator.cpp.o"
  "CMakeFiles/czsync_sim.dir/simulator.cpp.o.d"
  "libczsync_sim.a"
  "libczsync_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
