file(REMOVE_RECURSE
  "libczsync_sim.a"
)
