# Empty compiler generated dependencies file for czsync_sim.
# This may be replaced when dependencies are built.
