file(REMOVE_RECURSE
  "CMakeFiles/czsync_clock.dir/drift_model.cpp.o"
  "CMakeFiles/czsync_clock.dir/drift_model.cpp.o.d"
  "CMakeFiles/czsync_clock.dir/hardware_clock.cpp.o"
  "CMakeFiles/czsync_clock.dir/hardware_clock.cpp.o.d"
  "CMakeFiles/czsync_clock.dir/logical_clock.cpp.o"
  "CMakeFiles/czsync_clock.dir/logical_clock.cpp.o.d"
  "libczsync_clock.a"
  "libczsync_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czsync_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
