file(REMOVE_RECURSE
  "libczsync_clock.a"
)
