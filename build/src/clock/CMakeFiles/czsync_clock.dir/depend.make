# Empty dependencies file for czsync_clock.
# This may be replaced when dependencies are built.
