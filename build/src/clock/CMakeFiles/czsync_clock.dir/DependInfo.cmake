
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/drift_model.cpp" "src/clock/CMakeFiles/czsync_clock.dir/drift_model.cpp.o" "gcc" "src/clock/CMakeFiles/czsync_clock.dir/drift_model.cpp.o.d"
  "/root/repo/src/clock/hardware_clock.cpp" "src/clock/CMakeFiles/czsync_clock.dir/hardware_clock.cpp.o" "gcc" "src/clock/CMakeFiles/czsync_clock.dir/hardware_clock.cpp.o.d"
  "/root/repo/src/clock/logical_clock.cpp" "src/clock/CMakeFiles/czsync_clock.dir/logical_clock.cpp.o" "gcc" "src/clock/CMakeFiles/czsync_clock.dir/logical_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/czsync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/czsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
